"""Gaussian integral engines: Boys, one-electron, ERIs, screening."""

from repro.integrals.boys import boys, boys_array, boys_quadrature, boys_series, boys_single
from repro.integrals.class_batch import (
    ClassBatch,
    ClassPlan,
    build_class_plan,
    jk_for_quartets,
    jk_from_plan,
)
from repro.integrals.engine import (
    ERIEngine,
    MDEngine,
    OSEngine,
    QuartetCache,
    SyntheticERIEngine,
    canonical_quartet,
)
from repro.integrals.eri_3center import eri_2center_block, eri_3center_block
from repro.integrals.eri_md import eri_shell_quartet, eri_tensor
from repro.integrals.moments import dipole_integrals
from repro.integrals.eri_os import eri_shell_quartet_os
from repro.integrals.pairdata import (
    PairData,
    ShellPairData,
    StackedPairs,
    build_pair_data,
    eri_shell_quartet_batched,
    stack_pairs,
)
from repro.integrals.store import ERIStore, StoreInvalidatedWarning, basis_fingerprint
from repro.integrals.oneelec import (
    core_hamiltonian,
    kinetic,
    nuclear_attraction,
    overlap,
)
from repro.integrals.schwarz import (
    pair_bound,
    schwarz_matrix,
    schwarz_model,
    screening_stats,
    unique_significant_quartet_count,
)

__all__ = [
    "boys",
    "boys_array",
    "boys_quadrature",
    "boys_series",
    "boys_single",
    "ERIEngine",
    "MDEngine",
    "OSEngine",
    "QuartetCache",
    "SyntheticERIEngine",
    "canonical_quartet",
    "ClassBatch",
    "ClassPlan",
    "ERIStore",
    "StoreInvalidatedWarning",
    "basis_fingerprint",
    "build_class_plan",
    "jk_for_quartets",
    "jk_from_plan",
    "PairData",
    "ShellPairData",
    "StackedPairs",
    "stack_pairs",
    "build_pair_data",
    "eri_shell_quartet",
    "eri_shell_quartet_batched",
    "eri_tensor",
    "eri_2center_block",
    "eri_3center_block",
    "dipole_integrals",
    "eri_shell_quartet_os",
    "core_hamiltonian",
    "kinetic",
    "nuclear_attraction",
    "overlap",
    "pair_bound",
    "schwarz_matrix",
    "schwarz_model",
    "screening_stats",
    "unique_significant_quartet_count",
]
