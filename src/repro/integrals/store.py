"""Memory-mapped stored-integral mode (conventional SCF).

Mitin (arxiv 1905.07779) shows that for mid-size systems a *conventional*
SCF -- compute the screened non-zero integrals once, store them, and
re-read them every iteration -- beats direct SCF, whose ERI work is paid
again on every Fock build.  This module is that storage layer:

* :class:`ERIStore` persists canonical screened quartet blocks to a flat
  ``float64`` file served back through ``np.memmap`` -- the OS page
  cache keeps hot blocks in RAM with zero deserialization cost, and the
  file stays usable across processes and sessions.
* An ``index.npz`` maps packed canonical quartet keys to element offsets
  (binary search at lookup; vectorized for whole class batches).
* A ``manifest.json`` records provenance -- a SHA-256 fingerprint of the
  basis (angular momenta, purity, centers, exponents, normalized
  coefficients), the screening threshold ``tau``, and shapes -- so a
  store can never silently serve integrals for the wrong basis: a
  fingerprint mismatch invalidates the store (with a warning) and
  refilling starts from scratch.

Lifecycle: ``open_or_fill()`` -> ``filling`` (first Fock build records
computed blocks) -> ``finalize(tau)`` -> ``ready`` (all later builds read
only).  The store sits *under* the LRU quartet cache in
:meth:`repro.integrals.engine.ERIEngine.quartet` and under the
class-batched chunk resolver, so direct-SCF iterations >= 2 recompute
zero ERIs (tracked by ``quartets_served_from_store``).

Cross-process safety (service workers share store directories):

* every disk transition (attach / finalize / invalidate) runs under an
  advisory ``flock`` on ``<store>/.lock``;
* finalize publishes atomically -- data files are staged as ``*.tmp``
  and ``os.replace``'d into place, with ``manifest.json`` written
  **last**, so a crash mid-finalize leaves a store with no (or the old)
  manifest, never a manifest describing partial data;
* a process that acquires the finalize lock and finds a valid store
  already on disk re-attaches to it instead of clobbering it.

Data integrity (store format v2): ``index.npz`` carries a per-block
CRC-32 array (``crcs``) written at finalize, and the manifest carries a
whole-file SHA-256 of ``blocks.bin`` (``blocks_sha256``).  With
``verify_reads`` enabled (the SCF ``integrity=`` knob arms it), every
block is CRC-checked the *first* time it is served per attach
(scrub-on-first-read): an intact block is marked verified and skips
the check on later reads, so the steady-state cost is near zero, while
a mismatching block is *not* served -- :meth:`get` returns None (the
engine recomputes the quartet) and :meth:`verify_stacked` flags bad
rows for the class-batched resolver to recompute -- and is never
marked verified, so it is re-detected on every read.  The whole-file digest is only checked by the
offline ``repro verify`` audit, keeping attach cheap.  A manifest with
a different store format version is invalidated with
:class:`StoreInvalidatedWarning` and refilled cleanly.  Threat model
and detector costs: ``docs/ROBUSTNESS.md`` ("Silent data corruption").
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
import warnings
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.runtime.sdc import block_crc

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

# v2: index.npz gains per-block CRC-32s, manifest gains blocks_sha256
STORE_VERSION = 2
_MANIFEST = "manifest.json"
_INDEX = "index.npz"
_BLOCKS = "blocks.bin"
_LOCK = ".lock"


def basis_fingerprint(basis: BasisSet) -> str:
    """SHA-256 over everything that determines the ERI values.

    Covers each shell's angular momentum, purity flag, center,
    exponents, and *normalized* contraction coefficients (so a
    renormalization change invalidates stores too), plus the shell
    count/ordering implicitly through concatenation order.
    """
    h = hashlib.sha256()
    h.update(f"v{STORE_VERSION}:{basis.nbf}:{len(basis.shells)}".encode())
    for sh in basis.shells:
        h.update(f"|{sh.l}:{int(sh.pure)}".encode())
        h.update(np.ascontiguousarray(sh.center, dtype=np.float64).tobytes())
        h.update(np.ascontiguousarray(sh.exps, dtype=np.float64).tobytes())
        h.update(
            np.ascontiguousarray(sh.norm_coefs, dtype=np.float64).tobytes()
        )
    return h.hexdigest()


class StoreInvalidatedWarning(UserWarning):
    """An on-disk integral store did not match the requested basis."""


class ERIStore:
    """On-disk store of canonical screened ERI quartet blocks.

    States: ``filling`` (accepting :meth:`record` / :meth:`record_batch`)
    and ``ready`` (memory-mapped, read-only).  ``generation`` increments
    whenever the readable content changes, so callers can memoize
    offset resolutions against it.
    """

    def __init__(self, path: str | Path, basis: BasisSet):
        self.path = Path(path)
        self.basis = basis
        self.fingerprint = basis_fingerprint(basis)
        self.manifest: dict | None = None
        self.generation = 0
        self.filling = False
        self.ready = False
        self._keys: np.ndarray | None = None  # sorted packed keys
        self._offsets: np.ndarray | None = None  # element offsets, key order
        self._crcs: np.ndarray | None = None  # per-block CRC-32, key order
        self._verified: np.ndarray | None = None  # scrub-on-first-read marks
        self._flat: np.memmap | None = None
        #: CRC-check every block on first read (armed by ``integrity=``)
        self.verify_reads = False
        self.crc_checks = 0
        self.crc_mismatches = 0
        self._pending: dict[int, np.ndarray] = {}  # packed key -> flat block
        self._lock = threading.Lock()
        self._flock_depth = 0
        self._nshells = len(basis.shells)
        self._reject_reason = "stale or unreadable manifest"

    @contextlib.contextmanager
    def _disk_lock(self):
        """Advisory cross-process lock on the store directory.

        Reentrant within this instance (``flock`` on a second fd from
        the same process would self-deadlock).  Closing the fd releases
        the lock, so a crashed holder never wedges other processes.
        """
        if self._flock_depth > 0:
            self._flock_depth += 1
            try:
                yield
            finally:
                self._flock_depth -= 1
            return
        self.path.mkdir(parents=True, exist_ok=True)
        fd = os.open(self.path / _LOCK, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            self._flock_depth = 1
            yield
        finally:
            self._flock_depth = 0
            os.close(fd)

    # -- key packing --------------------------------------------------------

    def pack(self, m: int, n: int, p: int, q: int) -> int:
        s = self._nshells
        return ((m * s + n) * s + p) * s + q

    def pack_rows(self, quartets: np.ndarray) -> np.ndarray:
        s = self._nshells
        q = np.asarray(quartets, dtype=np.int64)
        return ((q[:, 0] * s + q[:, 1]) * s + q[:, 2]) * s + q[:, 3]

    # -- lifecycle ----------------------------------------------------------

    def open_or_fill(self) -> "ERIStore":
        """Attach to an existing valid store, or start filling a new one.

        An existing store whose manifest fingerprint does not match the
        current basis is *invalidated*: its files are removed, a
        :class:`StoreInvalidatedWarning` is emitted, and the store drops
        back to the filling state.
        """
        self.path.mkdir(parents=True, exist_ok=True)
        with self._disk_lock():
            if (self.path / _MANIFEST).exists():
                manifest = self._load_valid_manifest()
                if manifest is not None:
                    self._attach(manifest)
                    return self
                self.invalidate(self._reject_reason)
            self.filling = True
            self.ready = False
        return self

    def _load_valid_manifest(self) -> dict | None:
        """The on-disk manifest iff it matches this basis and is complete.

        On rejection, ``self._reject_reason`` says why -- a store format
        version mismatch is named explicitly so the resulting
        :class:`StoreInvalidatedWarning` is actionable.
        """
        self._reject_reason = "stale or unreadable manifest"
        try:
            manifest = json.loads((self.path / _MANIFEST).read_text())
        except (OSError, json.JSONDecodeError):
            return None
        version = manifest.get("version")
        if version != STORE_VERSION:
            self._reject_reason = (
                f"store format version {version!r} != expected {STORE_VERSION}"
            )
            return None
        if (
            manifest.get("basis_sha256") == self.fingerprint
            and (self.path / _INDEX).exists()
            and (self.path / _BLOCKS).exists()
        ):
            return manifest
        return None

    def _attach(self, manifest: dict) -> None:
        with np.load(self.path / _INDEX) as idx:
            self._keys = idx["keys"]
            self._offsets = idx["offsets"]
            self._crcs = idx["crcs"]
        self._verified = np.zeros(self._crcs.size, dtype=bool)
        self._flat = np.memmap(self.path / _BLOCKS, dtype=np.float64, mode="r")
        self.manifest = manifest
        self.ready = True
        self.filling = False
        self.generation += 1

    def invalidate(self, reason: str) -> None:
        """Discard on-disk content and return to the filling state."""
        warnings.warn(
            f"integral store at {self.path} invalidated ({reason}); "
            "integrals will be recomputed and the store refilled",
            StoreInvalidatedWarning,
            stacklevel=2,
        )
        self._flat = None
        self._keys = None
        self._offsets = None
        self._crcs = None
        self._verified = None
        self.manifest = None
        with self._disk_lock():
            # manifest first: a crash mid-invalidate must never leave a
            # manifest describing files that are already gone
            for name in (_MANIFEST, _INDEX, _BLOCKS):
                try:
                    (self.path / name).unlink(missing_ok=True)
                except OSError:
                    pass
        self.ready = False
        self.filling = True
        self._pending.clear()
        self.generation += 1

    # -- filling ------------------------------------------------------------

    @property
    def pending_blocks(self) -> int:
        return len(self._pending)

    def record(self, key: tuple[int, int, int, int], block: np.ndarray) -> None:
        """Record one canonical block while filling (thread-safe)."""
        if not self.filling:
            return
        flat = np.ascontiguousarray(block, dtype=np.float64).ravel()
        with self._lock:
            self._pending.setdefault(self.pack(*key), flat)

    def record_batch(self, quartets: np.ndarray, blocks: np.ndarray) -> None:
        """Record a stacked chunk of canonical blocks while filling."""
        if not self.filling:
            return
        keys = self.pack_rows(quartets)
        flat = np.ascontiguousarray(blocks, dtype=np.float64).reshape(
            len(keys), -1
        )
        with self._lock:
            for i, key in enumerate(keys):
                self._pending.setdefault(int(key), flat[i].copy())

    def finalize(self, tau: float | None = None) -> None:
        """Write pending blocks to disk and switch to the ready state.

        Publication is atomic and ordered: ``blocks.bin`` and
        ``index.npz`` are staged as ``*.tmp`` and ``os.replace``'d into
        place first; ``manifest.json`` goes last.  A process killed at
        any point mid-finalize therefore leaves either no manifest
        (``open_or_fill`` refills from scratch) or a complete store --
        never a manifest pointing at partial data.
        """
        with self._lock:
            if not self.filling or not self._pending:
                return
            items = sorted(self._pending.items())
            keys = np.array([k for k, _ in items], dtype=np.int64)
            sizes = np.array([b.size for _, b in items], dtype=np.int64)
            offsets = np.concatenate(([0], np.cumsum(sizes)[:-1]))
            flat = np.concatenate([b for _, b in items])
            self.path.mkdir(parents=True, exist_ok=True)
            with self._disk_lock():
                # another process may have finalized while this one was
                # still filling: attach to its store, don't clobber it
                existing = self._load_valid_manifest()
                if existing is not None:
                    self._pending.clear()
                    self._attach(existing)
                    return
                crcs = np.array(
                    [block_crc(b) for _, b in items], dtype=np.uint32
                )
                tmp_blocks = self.path / (_BLOCKS + ".tmp")
                flat.tofile(tmp_blocks)
                os.replace(tmp_blocks, self.path / _BLOCKS)
                tmp_index = self.path / (_INDEX + ".tmp")
                with open(tmp_index, "wb") as fh:
                    np.savez(fh, keys=keys, offsets=offsets, sizes=sizes,
                             crcs=crcs)
                os.replace(tmp_index, self.path / _INDEX)
                manifest = {
                    "version": STORE_VERSION,
                    "basis_sha256": self.fingerprint,
                    "blocks_sha256": hashlib.sha256(flat.tobytes()).hexdigest(),
                    "basis_name": self.basis.name,
                    "tau": None if tau is None else float(tau),
                    "nbf": int(self.basis.nbf),
                    "nshells": self._nshells,
                    "nblocks": int(keys.size),
                    "nelements": int(flat.size),
                    "created": datetime.now(timezone.utc).isoformat(),
                }
                tmp_manifest = self.path / (_MANIFEST + ".tmp")
                tmp_manifest.write_text(json.dumps(manifest, indent=2) + "\n")
                os.replace(tmp_manifest, self.path / _MANIFEST)
                self._pending.clear()
                self._attach(manifest)

    # -- reading ------------------------------------------------------------

    @property
    def nblocks(self) -> int:
        return 0 if self._keys is None else int(self._keys.size)

    @property
    def nbytes(self) -> int:
        return 0 if self._flat is None else int(self._flat.size * 8)

    def offsets_for(self, quartets: np.ndarray) -> np.ndarray | None:
        """Element offsets for quartet rows; -1 where a key is missing."""
        if not self.ready:
            return None
        keys = self.pack_rows(quartets)
        pos = np.searchsorted(self._keys, keys)
        pos = np.minimum(pos, self._keys.size - 1)
        found = self._keys[pos] == keys
        out = np.where(found, self._offsets[pos], -1)
        return out

    def read_stacked(
        self, offsets: np.ndarray, block_size: int, dims: tuple
    ) -> np.ndarray:
        """Gather uniform-size blocks at ``offsets`` into one stacked array."""
        rows = self._flat[offsets[:, None] + np.arange(block_size)]
        return rows.reshape((len(offsets),) + tuple(dims))

    def verify_stacked(
        self, offsets: np.ndarray, blocks: np.ndarray
    ) -> np.ndarray:
        """CRC-check blocks just gathered at ``offsets``; True where intact.

        ``_offsets`` is a cumulative-sum array (ascending), so each
        offset maps back to its key position by binary search.  Blocks
        already scrubbed this attach skip the CRC; intact blocks are
        marked scrubbed; a mismatch never is, so corruption stays
        visible on every read.  The class-batched resolver recomputes
        the rows flagged False.
        """
        pos = np.searchsorted(self._offsets, np.asarray(offsets, np.int64))
        good = np.ones(len(offsets), dtype=bool)
        todo = np.flatnonzero(~self._verified[pos])
        if todo.size:
            rows = np.ascontiguousarray(blocks, dtype=np.float64).reshape(
                len(offsets), -1
            )
            for i in todo:
                good[i] = block_crc(rows[i]) == int(self._crcs[pos[i]])
            self._verified[pos[todo[good[todo]]]] = True
            self.crc_checks += int(todo.size)
            self.crc_mismatches += int((~good).sum())
        return good

    def get(self, key: tuple[int, int, int, int]) -> np.ndarray | None:
        """One canonical block (basis-function shape), or None if absent.

        With ``verify_reads`` armed, a block whose bytes fail the CRC
        recorded at finalize is *not* served: the method returns None
        and the engine recomputes the quartet -- silent corruption in
        the memmap becomes a counted recompute instead of a wrong F.
        """
        if not self.ready:
            return None
        packed = self.pack(*key)
        pos = int(np.searchsorted(self._keys, packed))
        if pos >= self._keys.size or self._keys[pos] != packed:
            return None
        shells = self.basis.shells
        shape = tuple(shells[s].nbf for s in key)
        off = int(self._offsets[pos])
        size = int(np.prod(shape))
        block = np.asarray(self._flat[off:off + size])
        if self.verify_reads and not self._verified[pos]:
            self.crc_checks += 1
            if block_crc(block) != int(self._crcs[pos]):
                self.crc_mismatches += 1
                return None
            self._verified[pos] = True
        return block.reshape(shape)

    def stats(self) -> dict:
        """Snapshot for reports/tests."""
        return {
            "path": str(self.path),
            "ready": self.ready,
            "filling": self.filling,
            "nblocks": self.nblocks,
            "nbytes": self.nbytes,
            "pending_blocks": self.pending_blocks,
            "tau": None if self.manifest is None else self.manifest.get("tau"),
            "verify_reads": self.verify_reads,
            "crc_checks": int(self.crc_checks),
            "crc_mismatches": int(self.crc_mismatches),
        }
