"""Multipole-moment integrals (dipole), via the same Hermite machinery.

The dipole integral ``<a| r_k |b>`` factorizes per direction exactly like
the overlap; along the moment direction the 1-D integral picks up

``<i| x |j> = E_1^{ij} + X_P E_0^{ij}``  (times the sqrt(pi/p) factors),

where ``X_P`` is the Gaussian product center coordinate.  Used by
:mod:`repro.scf.properties` for molecular dipole moments.
"""

from __future__ import annotations

import math

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.chem.basis.shells import Shell, cartesian_components, component_scale
from repro.integrals.hermite import e_coefficients
from repro.integrals.spherical import apply_transforms


def dipole_block(
    sh_a: Shell, sh_b: Shell, origin: np.ndarray
) -> list[np.ndarray]:
    """The three dipole blocks ``<a| (r - origin)_k |b>`` for one shell pair."""
    comps_a = cartesian_components(sh_a.l)
    comps_b = cartesian_components(sh_b.l)
    origin = np.asarray(origin, dtype=float).reshape(3)
    blocks = [np.zeros((len(comps_a), len(comps_b))) for _ in range(3)]
    la, lb = sh_a.l, sh_b.l
    A, B = sh_a.center, sh_b.center
    for a, ca in zip(sh_a.exps, sh_a.norm_coefs):
        for b, cb in zip(sh_b.exps, sh_b.norm_coefs):
            p = a + b
            P = (a * A + b * B) / p
            pref = ca * cb * (math.pi / p) ** 1.5
            # E arrays per direction with one extra Hermite order available
            es = [
                e_coefficients(la, lb, a, b, float(A[d] - B[d])) for d in range(3)
            ]
            for ia, ca_idx in enumerate(comps_a):
                for ib, cb_idx in enumerate(comps_b):
                    s1d = [
                        es[d][ca_idx[d], cb_idx[d], 0] for d in range(3)
                    ]
                    for k in range(3):
                        i, j = ca_idx[k], cb_idx[k]
                        e1 = es[k][i, j, 1] if 1 <= i + j else 0.0
                        m1d = e1 + (P[k] - origin[k]) * es[k][i, j, 0]
                        others = 1.0
                        for d in range(3):
                            if d != k:
                                others *= s1d[d]
                        blocks[k][ia, ib] += pref * m1d * others
    sa = np.array([component_scale(*c) for c in comps_a])
    sb = np.array([component_scale(*c) for c in comps_b])
    out = []
    for k in range(3):
        blocks[k] *= sa[:, None] * sb[None, :]
        out.append(apply_transforms(blocks[k], (sh_a, sh_b)))
    return out


def dipole_integrals(
    basis: BasisSet, origin: np.ndarray | None = None
) -> np.ndarray:
    """Dipole integral matrices, shape (3, nbf, nbf).

    ``origin`` defaults to the coordinate origin; molecular dipole
    moments of neutral molecules are origin-independent.
    """
    if origin is None:
        origin = np.zeros(3)
    n = basis.nbf
    out = np.zeros((3, n, n))
    for i in range(basis.nshells):
        si = basis.shell_slice(i)
        for j in range(i + 1):
            sj = basis.shell_slice(j)
            blocks = dipole_block(basis.shells[i], basis.shells[j], origin)
            for k in range(3):
                out[k, si, sj] = blocks[k]
                if i != j:
                    out[k, sj, si] = blocks[k].T
    return out
