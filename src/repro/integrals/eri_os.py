"""Electron repulsion integrals via Obara-Saika recursion.

A second, fully independent ERI formulation used to cross-validate the
production McMurchie-Davidson engine (:mod:`repro.integrals.eri_md`):
the two schemes share no code beyond the Boys function, so agreement to
~1e-10 over random shell quartets is strong evidence both are correct.

Scheme: the Obara-Saika vertical recurrence builds ``(a0|c0)^{(m)}``
classes per primitive quartet; contraction happens next; the
Head-Gordon-Pople horizontal recurrences then shift angular momentum to
the second and fourth centers using only geometric factors.
"""

from __future__ import annotations

import math

import numpy as np

from repro.chem.basis.shells import Shell, cartesian_components, component_scale
from repro.integrals.boys import boys
from repro.integrals.spherical import apply_transforms

Triple = tuple[int, int, int]


def _raise_index(a: Triple, i: int) -> Triple:
    out = list(a)
    out[i] += 1
    return tuple(out)  # type: ignore[return-value]


def _lower_index(a: Triple, i: int) -> Triple:
    out = list(a)
    out[i] -= 1
    return tuple(out)  # type: ignore[return-value]


def _vrr(
    la_max: int,
    lc_max: int,
    p: float,
    q: float,
    PA: np.ndarray,
    WP: np.ndarray,
    QC: np.ndarray,
    WQ: np.ndarray,
    ssss: np.ndarray,
) -> dict[tuple[Triple, Triple], float]:
    """All (a0|c0)^{(0)} classes with |a| <= la_max, |c| <= lc_max.

    ``ssss[m]`` holds the (ss|ss)^{(m)} auxiliary values.
    """
    rho = p * q / (p + q)
    table: dict[tuple[Triple, Triple, int], float] = {}
    zero: Triple = (0, 0, 0)
    mtot = la_max + lc_max
    for m in range(mtot + 1):
        table[(zero, zero, m)] = float(ssss[m])

    def get(a: Triple, c: Triple, m: int) -> float:
        if min(a) < 0 or min(c) < 0:
            return 0.0
        key = (a, c, m)
        val = table.get(key)
        if val is not None:
            return val
        # lower on the center with angular momentum, preferring a
        if sum(a) > 0:
            i = max(range(3), key=lambda d: a[d])
            am = _lower_index(a, i)
            v = PA[i] * get(am, c, m) + WP[i] * get(am, c, m + 1)
            if am[i] > 0:
                amm = _lower_index(am, i)
                v += (
                    am[i]
                    / (2.0 * p)
                    * (get(amm, c, m) - rho / p * get(amm, c, m + 1))
                )
            if c[i] > 0:
                cm = _lower_index(c, i)
                v += c[i] / (2.0 * (p + q)) * get(am, cm, m + 1)
        else:
            i = max(range(3), key=lambda d: c[d])
            cm = _lower_index(c, i)
            v = QC[i] * get(a, cm, m) + WQ[i] * get(a, cm, m + 1)
            if cm[i] > 0:
                cmm = _lower_index(cm, i)
                v += (
                    cm[i]
                    / (2.0 * q)
                    * (get(a, cmm, m) - rho / q * get(a, cmm, m + 1))
                )
        table[key] = v
        return v

    out: dict[tuple[Triple, Triple], float] = {}
    for ltot_a in range(la_max + 1):
        for a in cartesian_components(ltot_a):
            for ltot_c in range(lc_max + 1):
                for c in cartesian_components(ltot_c):
                    out[(a, c)] = get(a, c, 0)
    return out


def eri_shell_quartet_os(
    sh_a: Shell, sh_b: Shell, sh_c: Shell, sh_d: Shell
) -> np.ndarray:
    """The ERI block ``(ab|cd)`` computed with Obara-Saika + HRR."""
    la, lb, lc, ld = sh_a.l, sh_b.l, sh_c.l, sh_d.l
    A, B, C, D = sh_a.center, sh_b.center, sh_c.center, sh_d.center
    AB = A - B
    CD = C - D
    la_max, lc_max = la + lb, lc + ld
    mtot = la_max + lc_max

    # contracted (a0|c0) classes
    contracted: dict[tuple[Triple, Triple], float] = {}
    for a_exp, ca in zip(sh_a.exps, sh_a.norm_coefs):
        for b_exp, cb in zip(sh_b.exps, sh_b.norm_coefs):
            p = a_exp + b_exp
            P = (a_exp * A + b_exp * B) / p
            kab = math.exp(-a_exp * b_exp / p * float(AB @ AB))
            for c_exp, cc in zip(sh_c.exps, sh_c.norm_coefs):
                for d_exp, cd_ in zip(sh_d.exps, sh_d.norm_coefs):
                    q = c_exp + d_exp
                    Q = (c_exp * C + d_exp * D) / q
                    kcd = math.exp(-c_exp * d_exp / q * float(CD @ CD))
                    W = (p * P + q * Q) / (p + q)
                    rho = p * q / (p + q)
                    pq = P - Q
                    T = rho * float(pq @ pq)
                    fm = boys(mtot, T)
                    pref = (
                        2.0
                        * math.pi**2.5
                        / (p * q * math.sqrt(p + q))
                        * kab
                        * kcd
                    )
                    ssss = pref * fm
                    classes = _vrr(
                        la_max, lc_max, p, q, P - A, W - P, Q - C, W - Q, ssss
                    )
                    w = ca * cb * cc * cd_
                    for key, val in classes.items():
                        contracted[key] = contracted.get(key, 0.0) + w * val

    # horizontal recurrences on contracted classes:
    # (a,b+1i|c,d) = (a+1i,b|c,d) + AB_i (a,b|c,d)
    hrr_bra: dict[tuple[Triple, Triple, Triple], float] = {
        (a, (0, 0, 0), c): v for (a, c), v in contracted.items()
    }

    def get_bra(a: Triple, b: Triple, c: Triple) -> float:
        key = (a, b, c)
        val = hrr_bra.get(key)
        if val is not None:
            return val
        i = max(range(3), key=lambda d: b[d])
        bm = _lower_index(b, i)
        v = get_bra(_raise_index(a, i), bm, c) + AB[i] * get_bra(a, bm, c)
        hrr_bra[key] = v
        return v

    hrr_full: dict[tuple[Triple, Triple, Triple, Triple], float] = {}

    def get_full(a: Triple, b: Triple, c: Triple, d: Triple) -> float:
        if sum(d) == 0:
            return get_bra(a, b, c)
        key = (a, b, c, d)
        val = hrr_full.get(key)
        if val is not None:
            return val
        i = max(range(3), key=lambda dd: d[dd])
        dm = _lower_index(d, i)
        v = get_full(a, b, _raise_index(c, i), dm) + CD[i] * get_full(a, b, c, dm)
        hrr_full[key] = v
        return v

    comps_a = cartesian_components(la)
    comps_b = cartesian_components(lb)
    comps_c = cartesian_components(lc)
    comps_d = cartesian_components(ld)
    out = np.zeros((len(comps_a), len(comps_b), len(comps_c), len(comps_d)))
    for ia, a in enumerate(comps_a):
        for ib, b in enumerate(comps_b):
            for ic, c in enumerate(comps_c):
                for id_, d in enumerate(comps_d):
                    out[ia, ib, ic, id_] = get_full(a, b, c, d)

    for axis, sh in enumerate((sh_a, sh_b, sh_c, sh_d)):
        scales = np.array([component_scale(*cc) for cc in cartesian_components(sh.l)])
        shape = [1, 1, 1, 1]
        shape[axis] = len(scales)
        out *= scales.reshape(shape)
    return apply_transforms(out, (sh_a, sh_b, sh_c, sh_d))
