"""The paper's analytic performance model (Sec III-G)."""

from repro.model.perfmodel import PerfModel

__all__ = ["PerfModel"]
