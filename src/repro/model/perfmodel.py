"""The paper's performance model (Sec III-G, Eqs 6-12).

Implements the average-time model from its definitions:

* Eq (6)  -- compute time ``T_comp(p) = t_int B^2 A^2 n^2 / (8 p)``;
* Eq (7)  -- per-process row/column block volume
  ``v1(p) = 4 A^2 B n^2 / p``;
* Eq (8)  -- overlapped cross volume
  ``v2(p) = 2 ((n / sqrt(p)) (B - q) + q) A^2``;
* Eq (9)  -- ``V(p) = (1 + s) (v1 + v2)``;
* Eq (10) -- ``T_comm(p) = V(p) * w / beta`` (w = bytes/element);
* Eq (11) -- the overhead ratio ``L(p) = T_comm / T_comp``;
* Eq (12) -- L at maximum parallelism ``p = n^2``.

Here n = nshells, A = avg functions/shell, B = avg \\|Phi(M)\\|, q = avg
consecutive-Phi overlap, s = avg steal victims/process, beta = bandwidth.
The printed Eq (11) in the paper omits unit bookkeeping (elements vs
bytes); this implementation carries explicit units and cross-checks the
closed form against the definitional ratio in the test suite.

Key derived results reproduced:

* isoefficiency: L is constant iff ``p / nshells^2`` is constant, i.e.
  ``nshells = O(sqrt(p))``;
* the "how much faster must integrals get before communication
  dominates" analysis (Sec III-G's ~50x for C96H24).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.fock.screening_map import ScreeningMap
from repro.runtime.machine import MachineConfig
from repro.util.validation import check_positive


@dataclass(frozen=True)
class PerfModel:
    """The paper's average-time model for one problem instance."""

    t_int: float  # seconds per ERI
    nshells: int  # n
    A: float  # avg basis functions per shell
    B: float  # avg |Phi(M)|
    q: float  # avg |Phi(M) & Phi(M+1)|
    s: float = 3.8  # avg steal victims per process (measured, Sec III-G)
    beta: float = 5.0e9  # bandwidth, bytes/s
    element_size: int = 8

    def __post_init__(self) -> None:
        check_positive(self.t_int, "t_int")
        check_positive(self.beta, "beta")
        if self.nshells < 1:
            raise ValueError("nshells must be >= 1")
        if not 0 <= self.q <= self.B:
            raise ValueError(f"need 0 <= q <= B, got q={self.q}, B={self.B}")

    @classmethod
    def from_screening(
        cls,
        screen: ScreeningMap,
        config: MachineConfig,
        s: float = 3.8,
    ) -> "PerfModel":
        """Fit A, B, q from an actual screening map (Sec III-G terms)."""
        return cls(
            t_int=config.t_int_gtfock,
            nshells=screen.nshells,
            A=screen.avg_shell_size,
            B=screen.avg_phi,
            q=screen.avg_consecutive_overlap,
            s=s,
            beta=config.bandwidth,
            element_size=config.element_size,
        )

    # -- Eqs (6)-(10) ---------------------------------------------------------

    def t_comp(self, p: int) -> float:
        """Eq (6): average compute time on p processes."""
        self._check_p(p)
        return self.t_int * self.B**2 * self.A**2 * self.nshells**2 / (8.0 * p)

    def v1(self, p: int) -> float:
        """Eq (7): (M, Phi(M))/(N, Phi(N)) volume per process, in elements."""
        self._check_p(p)
        return 4.0 * self.A**2 * self.B * self.nshells**2 / p

    def v2(self, p: int) -> float:
        """Eq (8): overlapped (Phi(M), Phi(N)) volume per process, elements."""
        self._check_p(p)
        nb = self.nshells / math.sqrt(p)
        return 2.0 * (nb * (self.B - self.q) + self.q) * self.A**2

    def volume(self, p: int) -> float:
        """Eq (9): V(p) = (1+s)(v1+v2), elements per process."""
        return (1.0 + self.s) * (self.v1(p) + self.v2(p))

    def t_comm(self, p: int) -> float:
        """Eq (10): communication time = V(p) bytes / beta."""
        return self.volume(p) * self.element_size / self.beta

    # -- Eqs (11)-(12) and derived quantities ---------------------------------

    def overhead_ratio(self, p: int) -> float:
        """Eq (11): L(p) = T_comm(p) / T_comp(p)."""
        return self.t_comm(p) / self.t_comp(p)

    def predictions(self, p: int) -> dict[str, float]:
        """Every Eq (6)-(11) prediction at ``p``, keyed for validation."""
        return {
            "t_comp": self.t_comp(p),
            "v1_elements": self.v1(p),
            "v2_elements": self.v2(p),
            "volume_elements": self.volume(p),
            "volume_mb": self.volume(p) * self.element_size / 1e6,
            "t_comm": self.t_comm(p),
            "overhead_ratio": self.overhead_ratio(p),
        }

    def overhead_ratio_closed_form(self, p: int) -> float:
        """Eq (11) in closed form (must equal :meth:`overhead_ratio`)."""
        self._check_p(p)
        w = self.element_size
        pref = 8.0 * w * (1.0 + self.s) / (self.beta * self.t_int * self.B**2)
        inner = (
            4.0 * self.B
            + 2.0 * (self.B - self.q) * math.sqrt(p) / self.nshells
            + 2.0 * self.q * p / self.nshells**2
        )
        return pref * inner

    def max_parallelism_ratio(self) -> float:
        """Eq (12): L at p = nshells^2 (one task per process)."""
        return self.overhead_ratio(self.nshells**2)

    def efficiency(self, p: int) -> float:
        """E(p) = 1 / (1 + L(p)) under T(p) = T_comp + T_comm."""
        return 1.0 / (1.0 + self.overhead_ratio(p))

    def isoefficiency_shells(self, p: int, l_target: float) -> float:
        """nshells needed to hold L(p) = l_target: grows as O(sqrt(p)).

        Solves the closed form for nshells at fixed p (quadratic in
        1/nshells).
        """
        self._check_p(p)
        if l_target <= 0:
            raise ValueError("l_target must be positive")
        w = self.element_size
        pref = 8.0 * w * (1.0 + self.s) / (self.beta * self.t_int * self.B**2)
        # pref*(4B + 2(B-q) sqrt(p)/n + 2 q p/n^2) = l_target; x = sqrt(p)/n
        c0 = pref * 4.0 * self.B - l_target
        c1 = pref * 2.0 * (self.B - self.q)
        c2 = pref * 2.0 * self.q
        if c2 <= 0:
            if c1 <= 0:
                raise ValueError("model has no communication terms to balance")
            x = -c0 / c1
        else:
            disc = c1 * c1 - 4.0 * c2 * c0
            if disc < 0:
                raise ValueError("target L unreachable (constant term too large)")
            x = (-c1 + math.sqrt(disc)) / (2.0 * c2)
        if x <= 0:
            raise ValueError(
                "target L is below the p-independent volume floor (4B term)"
            )
        return math.sqrt(p) / x

    def crossover_t_int(self, p: int) -> float:
        """The t_int at which L(p) = 1 (communication starts to dominate)."""
        return self.t_int * self.overhead_ratio(p)

    def integral_speedup_to_crossover(self, p: int) -> float:
        """How much faster integrals must get before comm dominates at p.

        The paper's C96H24 analysis concludes "approximately 50 times
        faster" at 3888 cores.
        """
        l = self.overhead_ratio(p)
        if l >= 1.0:
            return 1.0
        return 1.0 / l

    def _check_p(self, p: int) -> None:
        if p < 1:
            raise ValueError(f"p must be >= 1, got {p}")
