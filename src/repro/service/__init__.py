"""SCF-as-a-service: durable job queue + lease-based worker pool.

The execution layer counterpart of the paper's resilience story: the
simulator (PR 4) proved Fock construction keeps making progress when
simulated ranks die; this package makes *real* SCF jobs survive real
worker crashes, hangs, and poison inputs.

* :mod:`repro.service.store` -- SQLite-backed (WAL) durable job store
  with atomic state transitions
  ``queued -> leased -> running -> done | failed | quarantined``,
  time-limited leases renewed by heartbeat, exponential backoff with
  deterministic jitter, and quarantine with the captured traceback
  after bounded attempts.
* :mod:`repro.service.worker` -- the worker-process main loop: claim a
  lease, run the job with per-iteration heartbeats and checkpointing,
  resume bitwise-exact from the latest intact checkpoint, degrade
  ``jk_threads``/``cache_mb`` on ``MemoryError`` retries.
* :mod:`repro.service.supervisor` -- ``repro serve``: spawns the
  multi-process pool, expires dead leases, enforces per-job wall-clock
  timeouts (SIGTERM then SIGKILL with guaranteed child-pool teardown),
  and respawns crashed workers.
* :mod:`repro.service.chaos` -- the chaos gate: with seeded worker
  SIGKILLs mid-iteration every submitted job still reaches ``done`` and
  final energies match fault-free baselines to <= 1e-12.

See docs/ROBUSTNESS.md ("Service resilience") for the state machine and
the degradation ladder.
"""

from repro.service.store import (  # noqa: F401
    Job,
    JobStore,
    STATES,
    TERMINAL_STATES,
    backoff_delay,
)
from repro.service.worker import LeaseLostError, worker_main  # noqa: F401
from repro.service.supervisor import ServeResult, serve  # noqa: F401
from repro.service.chaos import ServiceChaosResult, run_service_chaos  # noqa: F401
