"""Service worker: claim a lease, run the job, heartbeat, survive.

One worker process runs this loop::

    claim -> start -> run (heartbeat per SCF iteration) -> complete
                                   |
                 MemoryError ------+--> fail(retryable, degraded spec)
                 poison input -----+--> fail(non-retryable) -> quarantine
                 crash / SIGKILL --+--> (nothing: lease expires, the
                                        supervisor re-enqueues, the next
                                        worker resumes from checkpoint)

Crash-tolerance mechanics:

* **Heartbeat = per-iteration callback.**  The lease is renewed from
  :class:`~repro.scf.hf.RHF`'s ``on_iteration`` hook, *after* that
  iteration's checkpoint is durably on disk.  A worker stuck inside an
  iteration (native hang, livelock) stops heartbeating and loses its
  lease -- a deliberate design choice over a background heartbeat
  thread, which would keep vouching for a hung process forever.  Size
  ``lease_s`` above the per-iteration time.
* **Bitwise resume.**  Jobs run with ``checkpoint_dir`` + ``restart=True``,
  so a re-claimed job continues from the latest intact snapshot and
  reproduces the uninterrupted trajectory exactly (PR-4 guarantee).
* **Idempotent recording.**  :meth:`JobStore.complete` is guarded by the
  lease owner; a stale worker that lost its lease mid-run gets ``False``
  back and discards its result -- a job is never recorded-as-done twice.
* **Graceful degradation.**  A ``MemoryError`` retry re-enqueues the job
  with a degraded spec (:func:`degrade_spec`): first the threaded J/K
  is dropped to serial, then the ERI cache is released.
* **Clean teardown.**  SIGTERM (supervisor timeout or shutdown)
  terminates registered multiprocessing pools
  (:func:`repro.parallel.mp_fock.shutdown_active_pools`), interrupts
  threaded J/K workers at the next chunk edge, releases the current
  lease, and exits 143 -- no orphaned children, no stuck lease.

Job specs are plain dicts.  ``kind="scf"`` (default) runs an RHF with
``molecule``/``basis``/``max_iter``/``jk_threads``/``cache_mb``/``guard``/
``integrity``/``store_dir`` keys.  A job whose run raises
:class:`~repro.runtime.sdc.IntegrityError` (corruption the recovery
ladder could not repair) is quarantined like poison input -- retrying
against the same corrupt state cannot help.  The other kinds are deterministic service-test
personalities used by the chaos harness and the test suite: ``sleep``
(optionally ``hang`` = no heartbeat), ``fail`` (raise until attempt N),
``poison`` (always raise ValueError), and ``oom`` (raise MemoryError
until the spec is fully degraded).
"""

from __future__ import annotations

import json
import os
import signal
import time
import traceback
from pathlib import Path

from repro.runtime.sdc import IntegrityError
from repro.service.store import Job, JobStore

#: exit code of a SIGTERM'd worker (128 + SIGTERM)
SIGTERM_EXIT = 143

#: snapshots kept per job after a successful run
CHECKPOINT_KEEP = 3


class LeaseLostError(RuntimeError):
    """The job's lease was lost mid-run; abort and discard the result."""


def degrade_spec(spec: dict) -> tuple[dict | None, str]:
    """One rung down the MemoryError degradation ladder.

    Returns ``(new_spec, description)`` or ``(None, "")`` when nothing
    is left to shed.  Ladder: threaded J/K -> serial, then drop the
    ERI quartet cache.
    """
    if spec.get("jk_threads") and int(spec["jk_threads"]) > 1:
        new = dict(spec)
        new["jk_threads"] = 1
        return new, "jk_threads -> 1"
    if spec.get("cache_mb"):
        new = dict(spec)
        new["cache_mb"] = None
        return new, "cache_mb -> None"
    return None, ""


#: in-flight job the SIGTERM handler must release, keyed per process
_CURRENT: dict = {}


def _sigterm_handler(signum, frame):  # pragma: no cover - signal path
    from repro.integrals.class_batch import interrupt_jk_threads
    from repro.parallel.mp_fock import shutdown_active_pools

    interrupt_jk_threads()
    shutdown_active_pools()
    store: JobStore | None = _CURRENT.get("store")
    job_id = _CURRENT.get("job_id")
    if store is not None and job_id is not None:
        try:
            store.release(job_id, _CURRENT["owner"], "worker sigterm")
        except Exception:
            pass
    raise SystemExit(SIGTERM_EXIT)


def install_signal_handlers() -> None:
    """Arm the clean-teardown SIGTERM handler (worker processes only)."""
    signal.signal(signal.SIGTERM, _sigterm_handler)


# -- job personalities -------------------------------------------------------


def _run_scf_job(store: JobStore, job: Job, owner: str) -> dict:
    from repro.chem import builders
    from repro.chem.builders import paper_molecule
    from repro.scf import RHF
    from repro.scf.checkpoint import load_latest_intact, prune_checkpoints

    spec = job.spec
    name = spec.get("molecule", "water")
    simple = {
        "water": builders.water,
        "h2": builders.h2,
        "methane": builders.methane,
        "benzene": builders.benzene,
    }
    mol = simple[name]() if name in simple else paper_molecule(name)
    ckpt_dir = Path(job.job_dir) / "checkpoints"
    resumed = load_latest_intact(ckpt_dir)

    def heartbeat(iteration: int, energy: float) -> None:
        if not store.heartbeat(job.id, owner):
            raise LeaseLostError(
                f"job {job.id}: lease lost at iteration {iteration}"
            )

    rhf = RHF(
        mol,
        basis_name=spec.get("basis", "sto-3g"),
        max_iter=int(spec.get("max_iter", 100)),
        jk_threads=spec.get("jk_threads"),
        cache_mb=spec.get("cache_mb"),
        integral_store=spec.get("store_dir"),
        guard=bool(spec.get("guard", False)),
        integrity=bool(spec.get("integrity", False)),
        checkpoint_dir=str(ckpt_dir),
        restart=True,
        on_iteration=heartbeat,
    )
    result = rhf.run()
    prune_checkpoints(ckpt_dir, keep=CHECKPOINT_KEEP)
    if not result.converged:
        raise RuntimeError(
            f"SCF did not converge in {result.iterations} iterations"
        )
    return {
        "energy": result.energy,
        "converged": result.converged,
        "iterations": result.iterations,
        "resumed_from_iteration": 0 if resumed is None else resumed.iteration,
    }


def _run_test_job(store: JobStore, job: Job, owner: str) -> dict:
    """The deterministic non-SCF personalities (chaos/test machinery)."""
    spec, kind = job.spec, job.spec["kind"]
    if kind == "sleep":
        deadline = time.time() + float(spec.get("seconds", 1.0))
        while time.time() < deadline:
            time.sleep(min(0.05, max(0.0, deadline - time.time())))
            if not spec.get("hang") and not store.heartbeat(job.id, owner):
                raise LeaseLostError(f"job {job.id}: lease lost mid-sleep")
        return {"ok": True, "slept_s": float(spec.get("seconds", 1.0))}
    if kind == "fail":
        # job.attempts counts *finished* attempts: 0 on the first try
        if job.attempts < int(spec.get("times", 1)):
            raise RuntimeError(
                f"injected failure on attempt {job.attempts + 1}"
            )
        return {"ok": True, "attempts_needed": job.attempts + 1}
    if kind == "poison":
        raise ValueError("poison job: deterministic bad input")
    if kind == "oom":
        if degrade_spec(spec)[0] is not None:
            raise MemoryError("injected allocation failure")
        return {"ok": True, "degraded": True}
    raise ValueError(f"unknown job kind {kind!r}")


# -- the claim-run-record cycle ----------------------------------------------


def run_claimed_job(store: JobStore, job: Job, owner: str) -> str:
    """Run one leased job to a terminal/retry transition; returns it.

    Every outcome maps to exactly one guarded store transition; an
    outcome whose guard no longer matches (lease lost while finishing)
    is discarded, which is what makes re-execution after lease expiry
    idempotent.
    """
    from repro.obs.manifest import RunLedger, set_ledger
    from repro.obs.metrics import MetricsRegistry, set_metrics

    if not store.start(job.id, owner):
        return "lost"  # lease expired between claim and start
    _CURRENT.update({"store": store, "job_id": job.id, "owner": owner})
    spec = job.spec
    ledger = RunLedger(
        Path(job.job_dir) / "run",
        command="service-job",
        config=dict(spec),
        molecule=spec.get("molecule"),
        basis=spec.get("basis"),
        extra={
            "job_id": job.id, "attempt": job.attempts + 1, "worker": owner,
        },
    )
    prev_ledger = set_ledger(ledger)
    prev_metrics = set_metrics(MetricsRegistry())
    rc = 1
    try:
        if spec.get("kind", "scf") == "scf":
            result = _run_scf_job(store, job, owner)
        else:
            result = _run_test_job(store, job, owner)
        recorded = store.complete(job.id, owner, result)
        ledger.add_summary(**result)
        rc = 0 if recorded else 1
        return "done" if recorded else "lost"
    except LeaseLostError as exc:
        ledger.add_summary(lease_lost=str(exc))
        return "lost"
    except MemoryError:
        err = traceback.format_exc()
        new_spec, rung = degrade_spec(spec)
        detail = f"MemoryError; degraded: {rung}" if new_spec else err
        state = store.fail(
            job.id, owner, detail, retryable=True, new_spec=new_spec,
            event="degraded" if new_spec else "retry",
        )
        ledger.add_summary(error="MemoryError", degraded=rung or None)
        return state or "lost"
    except IntegrityError:
        # unrecoverable data corruption: the recovery ladder (recompute,
        # rollback) already failed inside the run, so re-running against
        # the same corrupt state cannot help -> quarantine for a human
        state = store.fail(
            job.id, owner, traceback.format_exc(), retryable=False,
        )
        ledger.add_summary(error="data corruption (quarantined)")
        return state or "lost"
    except (ValueError, TypeError):
        # deterministic bad input: retrying cannot help -> quarantine
        state = store.fail(
            job.id, owner, traceback.format_exc(), retryable=False,
        )
        ledger.add_summary(error="poison input")
        return state or "lost"
    except Exception:
        state = store.fail(
            job.id, owner, traceback.format_exc(), retryable=True,
        )
        ledger.add_summary(error="crashed")
        return state or "lost"
    finally:
        _CURRENT.clear()
        set_metrics(prev_metrics)
        set_ledger(prev_ledger)
        ledger.close(rc)


def worker_main(
    queue_dir: str | Path,
    owner: str | None = None,
    poll_s: float = 0.2,
    exit_when_drained: bool = False,
    max_jobs: int | None = None,
) -> int:
    """The worker-process entry point (used by ``repro serve``).

    Claims and runs jobs until ``exit_when_drained`` sees an empty
    queue (or ``max_jobs`` have been processed); idles on ``poll_s``
    between empty claims.
    """
    owner = owner or f"worker-{os.getpid()}"
    install_signal_handlers()
    store = JobStore(queue_dir)
    done = 0
    while True:
        job = store.claim(owner)
        if job is None:
            if exit_when_drained and store.drained():
                return 0
            time.sleep(poll_s)
            continue
        run_claimed_job(store, job, owner)
        done += 1
        if max_jobs is not None and done >= max_jobs:
            return 0


def main(argv: list[str]) -> int:
    """CLI shim: ``<queue_dir> [owner [opts-json]]`` (see _worker_entry)."""
    queue_dir = argv[0]
    owner = argv[1] if len(argv) > 1 else None
    opts = json.loads(argv[2]) if len(argv) > 2 else {}
    return worker_main(queue_dir, owner, **opts)
