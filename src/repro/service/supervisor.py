"""``repro serve``: the supervisor that keeps the worker pool alive.

The supervisor owns no job state -- everything durable lives in the
:class:`~repro.service.store.JobStore` -- so the supervisor itself can
crash and be restarted without losing work.  Its loop enforces the three
recovery paths a lease-based queue needs:

* **Lease expiry** (:meth:`JobStore.expire_leases`): a worker that was
  SIGKILLed, OOM-killed, or hung stops heartbeating; its job is
  re-enqueued with backoff and resumed by another worker from the
  latest intact checkpoint.
* **Wall-clock timeouts**: a *running* job past its ``timeout_s`` budget
  is charged a timeout attempt and its worker is killed
  SIGTERM-then-SIGKILL.  SIGTERM gives the worker's handler a grace
  window to tear down its multiprocessing pools (no orphaned children)
  and exit; a worker that ignores it (stuck in native code) is
  SIGKILLed and its children are reaped by the OS when the process
  group dies.
* **Worker respawn**: any worker process that exits -- crash, kill,
  chaos injection -- is replaced with a fresh one (with a new owner
  name, so a stale lease can never be renewed by its successor).

Workers are real subprocesses (``python -m repro.service._worker_entry``), not
forks: no inherited sqlite handles, no inherited signal state, and the
chaos harness can SIGKILL them exactly like a production incident would.
"""

from __future__ import annotations

import json
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.service.store import JobStore

#: default SIGTERM -> SIGKILL grace window
DEFAULT_GRACE_S = 2.0


@dataclass
class ServeResult:
    """What one ``serve`` invocation did (summarized for logs/metrics)."""

    drained: bool
    wall_s: float
    counts: dict[str, int]
    worker_restarts: int = 0
    timeouts_enforced: int = 0
    leases_expired: int = 0
    events: dict[str, int] = field(default_factory=dict)

    def summary_lines(self) -> list[str]:
        c = self.counts
        return [
            f"drained      = {self.drained} ({self.wall_s:.1f}s)",
            "jobs         = "
            + ", ".join(f"{k} {v}" for k, v in sorted(c.items()) if v),
            f"restarts     = {self.worker_restarts}, "
            f"timeouts = {self.timeouts_enforced}, "
            f"leases expired = {self.leases_expired}",
        ]


class _Pool:
    """The live worker subprocesses, keyed by owner name."""

    def __init__(self, queue_dir: Path, drain: bool, poll_s: float):
        self.queue_dir = queue_dir
        self.drain = drain
        self.poll_s = poll_s
        self.procs: dict[str, subprocess.Popen] = {}
        self.spawned = 0

    def spawn(self) -> str:
        self.spawned += 1
        owner = f"w{self.spawned}"
        opts = {"poll_s": self.poll_s, "exit_when_drained": self.drain}
        self.procs[owner] = subprocess.Popen(
            [sys.executable, "-m", "repro.service._worker_entry",
             str(self.queue_dir), owner, json.dumps(opts)],
        )
        return owner

    def reap(self) -> list[str]:
        """Owners whose process has exited (removed from the pool)."""
        dead = [o for o, p in self.procs.items() if p.poll() is not None]
        for owner in dead:
            del self.procs[owner]
        return dead

    def kill_job_owner(self, owner: str, grace_s: float) -> bool:
        """SIGTERM then (after ``grace_s``) SIGKILL one worker."""
        proc = self.procs.get(owner)
        if proc is None or proc.poll() is not None:
            return False
        proc.terminate()
        try:
            proc.wait(timeout=grace_s)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
        return True

    def shutdown(self, grace_s: float) -> None:
        """Guaranteed teardown: no worker outlives the supervisor."""
        for proc in self.procs.values():
            if proc.poll() is None:
                proc.terminate()
        deadline = time.time() + grace_s
        for proc in self.procs.values():
            remaining = max(0.0, deadline - time.time())
            try:
                proc.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        self.procs.clear()


def serve(
    queue_dir: str | Path,
    workers: int = 3,
    poll_s: float = 0.25,
    drain: bool = False,
    grace_s: float = DEFAULT_GRACE_S,
    wall_limit_s: float | None = None,
    install_signals: bool = True,
    on_tick=None,
    verbose: bool = False,
) -> ServeResult:
    """Run the worker pool until drained (``drain=True``) or signalled.

    ``on_tick(store, pool)`` is an optional per-tick hook -- the chaos
    harness uses it to SIGKILL workers at seeded times without any
    wall-clock racing against the supervisor loop.  ``wall_limit_s``
    bounds the run (CI safety net); hitting it returns with
    ``drained=False`` rather than hanging a pipeline forever.
    """
    queue_dir = Path(queue_dir)
    store = JobStore(queue_dir)
    pool = _Pool(queue_dir, drain, poll_s)
    stopping = {"flag": False}

    if install_signals:
        def _stop(signum, frame):
            stopping["flag"] = True

        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)

    t0 = time.time()
    restarts = 0
    timeouts = 0
    expired_total = 0
    for _ in range(workers):
        pool.spawn()
    if verbose:
        print(
            f"serving {queue_dir} with {workers} workers "
            f"(drain={drain})", flush=True,
        )
    try:
        while not stopping["flag"]:
            now = time.time()
            expired = store.expire_leases(now)
            expired_total += len(expired)
            if verbose and expired:
                print(f"re-enqueued expired leases: {expired}", flush=True)
            # runaway jobs: charge the timeout first (so the job is
            # re-enqueued even if the worker wins the race and exits
            # cleanly), then kill the worker
            for job in store.running_past_timeout(now):
                state = store.timeout_job(job.id, now)
                if state is not None:
                    timeouts += 1
                    if verbose:
                        print(
                            f"job {job.id} exceeded {job.timeout_s:.0f}s: "
                            f"-> {state}; killing {job.lease_owner}",
                            flush=True,
                        )
                    if job.lease_owner:
                        pool.kill_job_owner(job.lease_owner, grace_s)
            dead = pool.reap()
            finished = drain and store.drained()
            if dead and not finished and not stopping["flag"]:
                for _owner in dead:
                    pool.spawn()
                    restarts += 1
                if verbose:
                    print(
                        f"respawned {len(dead)} worker(s) for {dead}",
                        flush=True,
                    )
            if on_tick is not None:
                on_tick(store, pool)
            if finished and not pool.procs:
                break
            if wall_limit_s is not None and now - t0 > wall_limit_s:
                break
            time.sleep(poll_s)
    finally:
        pool.shutdown(grace_s)
    result = ServeResult(
        drained=store.drained(),
        wall_s=time.time() - t0,
        counts=store.counts(),
        worker_restarts=restarts,
        timeouts_enforced=timeouts,
        leases_expired=expired_total,
        events=store.event_counts(),
    )
    _export_serve_metrics(store, result)
    return result


def _export_serve_metrics(store: JobStore, result: ServeResult) -> None:
    from repro.obs.metrics import export_service

    export_service(
        store.stats(),
        restarts=result.worker_restarts,
        timeouts=result.timeouts_enforced,
        leases_expired=result.leases_expired,
    )


