"""Subprocess entry point for service workers.

``python -m repro.service._worker_entry <queue_dir> [owner [opts-json]]``

Kept separate from :mod:`repro.service.worker` (which the package
``__init__`` re-exports) so running it with ``-m`` does not trip the
"found in sys.modules" runpy warning.
"""

import sys

from repro.service.worker import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
