"""Service chaos gate: seeded worker SIGKILLs must not lose a job.

The execution-layer analogue of ``repro chaos`` (simulator rank deaths):
submit real SCF jobs to a real worker pool, SIGKILL live workers at
seeded times while their jobs are mid-iteration, and verify the paper's
resilience claim end to end:

* every submitted job still reaches ``done`` (lease expiry re-enqueues,
  checkpoint restart resumes);
* each final energy matches a fault-free baseline run of the same
  molecule/basis to ``tolerance`` (default 1e-12) -- resumption is
  bitwise, so the match is typically *exact*;
* no job is ever recorded-as-done twice (the lease-owner guard), even
  though some were *executed* more than once.

The kill schedule is a seeded draw (delay per kill), so a chaos run is
reproducible the way every fault plan in this package is.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.service.store import JobStore
from repro.service.supervisor import serve


@dataclass
class ServiceChaosResult:
    """Outcome of one seeded service-chaos run."""

    njobs: int
    workers: int
    seed: int
    kills_planned: int
    kills_done: int
    wall_s: float
    jobs_per_min: float
    counts: dict[str, int]
    requeues: int
    double_records: int
    energy_errors: dict[int, float] = field(default_factory=dict)
    max_energy_error: float = 0.0
    tolerance: float = 1e-12
    worker_restarts: int = 0

    @property
    def all_done(self) -> bool:
        return self.counts.get("done", 0) == self.njobs

    @property
    def passed(self) -> bool:
        return (
            self.all_done
            and self.double_records == 0
            and self.max_energy_error <= self.tolerance
        )

    def summary_lines(self) -> list[str]:
        return [
            f"jobs         = {self.njobs} submitted, "
            f"{self.counts.get('done', 0)} done "
            f"({self.jobs_per_min:.1f} jobs/min)",
            f"kills        = {self.kills_done}/{self.kills_planned} "
            f"(seed {self.seed}), worker restarts {self.worker_restarts}",
            f"requeues     = {self.requeues} "
            f"(lease expiry / retry re-enqueues)",
            f"max |dE|     = {self.max_energy_error:.3e} "
            f"(tolerance {self.tolerance:.0e})",
            f"double records = {self.double_records}",
            f"passed       = {self.passed}",
        ]

    def to_json(self) -> dict:
        return {
            "family": "service",
            "njobs": self.njobs,
            "workers": self.workers,
            "seed": self.seed,
            "kills_planned": self.kills_planned,
            "kills_done": self.kills_done,
            "wall_s": self.wall_s,
            "jobs_per_min": self.jobs_per_min,
            "counts": self.counts,
            "requeues": self.requeues,
            "double_records": self.double_records,
            "max_energy_error": self.max_energy_error,
            "tolerance": self.tolerance,
            "worker_restarts": self.worker_restarts,
            "passed": self.passed,
        }


class _SeededKiller:
    """SIGKILL a lease-holding worker at each seeded delay."""

    def __init__(self, kills: int, seed: int, window: tuple[float, float]):
        rng = np.random.default_rng(seed)
        lo, hi = window
        self.delays = sorted(rng.uniform(lo, hi, size=kills).tolist())
        self.done = 0
        self.t0: float | None = None

    def __call__(self, store: JobStore, pool) -> None:
        if self.t0 is None:
            self.t0 = time.time()
        if self.done >= len(self.delays):
            return
        if time.time() - self.t0 < self.delays[self.done]:
            return
        # kill a worker that actually holds a lease: that is the
        # "mid-iteration" crash the gate is about
        busy = {
            j.lease_owner for j in store.jobs(("leased", "running"))
            if j.lease_owner
        }
        for owner, proc in pool.procs.items():
            if owner in busy and proc.poll() is None:
                os.kill(proc.pid, signal.SIGKILL)
                self.done += 1
                return


def run_service_chaos(
    queue_dir: str | Path,
    njobs: int = 8,
    workers: int = 3,
    kills: int = 2,
    seed: int = 0,
    molecule: str = "water",
    basis: str = "6-31g",
    tolerance: float = 1e-12,
    lease_s: float = 2.0,
    timeout_s: float = 120.0,
    max_attempts: int = 6,
    kill_window: tuple[float, float] = (0.5, 4.0),
    wall_limit_s: float = 300.0,
    poll_s: float = 0.2,
) -> ServiceChaosResult:
    """Run the seeded kill scenario; see the module docstring for the gate.

    The fault-free baseline energy is computed inline (one uninterrupted
    RHF per distinct spec) before the pool starts, so the comparison
    never depends on service machinery being correct.
    """
    from repro.chem import builders
    from repro.scf import RHF

    queue_dir = Path(queue_dir)
    store = JobStore(queue_dir)

    simple = {
        "water": builders.water, "h2": builders.h2,
        "methane": builders.methane, "benzene": builders.benzene,
    }
    baseline = RHF(simple[molecule](), basis_name=basis).run()
    if not baseline.converged:
        raise RuntimeError(
            f"fault-free baseline {molecule}/{basis} did not converge"
        )

    job_ids = []
    for _ in range(njobs):
        job = store.submit(
            {"kind": "scf", "molecule": molecule, "basis": basis},
            lease_s=lease_s, timeout_s=timeout_s, max_attempts=max_attempts,
        )
        job_ids.append(job.id)

    killer = _SeededKiller(kills, seed, kill_window)
    t0 = time.time()
    outcome = serve(
        queue_dir, workers=workers, poll_s=poll_s, drain=True,
        wall_limit_s=wall_limit_s, install_signals=False, on_tick=killer,
    )
    wall = time.time() - t0

    counts = store.counts()
    energy_errors: dict[int, float] = {}
    double_records = 0
    for job_id in job_ids:
        done_events = [
            ev for ev, _, _ in store.events_for(job_id) if ev == "done"
        ]
        if len(done_events) > 1:
            double_records += len(done_events) - 1
        job = store.get(job_id)
        if job.state == "done" and job.result is not None:
            energy_errors[job_id] = abs(
                float(job.result["energy"]) - baseline.energy
            )
    events = store.event_counts()
    requeues = events.get("lease_expired", 0) + events.get("retry", 0) \
        + events.get("timeout", 0)
    if counts.get("done", 0) == njobs and len(energy_errors) == njobs:
        max_err = max(energy_errors.values(), default=0.0)
    else:
        max_err = float("inf")  # a lost job can never pass the gate
    return ServiceChaosResult(
        njobs=njobs,
        workers=workers,
        seed=seed,
        kills_planned=kills,
        kills_done=killer.done,
        wall_s=wall,
        jobs_per_min=(njobs / wall * 60.0) if wall > 0 else 0.0,
        counts=counts,
        requeues=requeues,
        double_records=double_records,
        energy_errors=energy_errors,
        max_energy_error=max_err,
        tolerance=tolerance,
        worker_restarts=outcome.worker_restarts,
    )
