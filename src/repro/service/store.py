"""Durable SQLite job store: the service's crash-tolerant source of truth.

Every job the service ever sees lives in one WAL-mode SQLite database
(``queue.db`` inside the queue directory), so submissions survive the
process that made them and any number of worker/supervisor crashes.
Robustness invariants:

* **Atomic state transitions.**  Every transition is a single guarded
  ``UPDATE ... WHERE id = ? AND state = ? [AND lease_owner = ?]`` inside
  a ``BEGIN IMMEDIATE`` transaction, so two workers can never both own a
  job and a stale worker (one whose lease expired and whose job was
  re-enqueued) can never record a result: its guarded update matches
  zero rows and the result is discarded.

  The machine: ``queued -> leased -> running -> done | failed |
  quarantined``, with the retry edge ``leased|running -> queued``
  (lease expiry, worker release, retryable failure, wall-clock timeout).

* **Time-limited leases.**  A claim stamps ``lease_owner`` and
  ``lease_expires``; the worker renews by heartbeat once per SCF
  iteration.  A worker that dies or hangs stops renewing, the
  supervisor's :meth:`JobStore.expire_leases` re-enqueues the job, and
  the next worker resumes from the job's latest intact checkpoint --
  bitwise-identical to an uninterrupted run (see
  :mod:`repro.scf.checkpoint`).

* **Exponential backoff + deterministic jitter.**  A retried job is not
  eligible before ``not_before = now + backoff_delay(...)``; the jitter
  is a hash of ``(job id, attempt)`` so re-running a chaos scenario with
  the same seed reproduces the same schedule (the package-wide
  "same seed -> same run" discipline).

* **Bounded attempts, then quarantine.**  Poison inputs cannot loop
  forever: after ``max_attempts`` the job lands in ``quarantined`` with
  the captured traceback in its ``error`` column for post-mortems.

Every transition is also appended to an ``events`` table -- the
observable trail the tests, ``repro status`` and the service metrics
(:func:`repro.obs.metrics.export_service`) read back.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from pathlib import Path

from repro.obs.manifest import utc_now_iso

DB_NAME = "queue.db"

#: every state a job row can be in
STATES = ("queued", "leased", "running", "done", "failed", "quarantined")
#: states with no outgoing edges
TERMINAL_STATES = ("done", "failed", "quarantined")
#: states holding a live lease
LEASED_STATES = ("leased", "running")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    spec          TEXT NOT NULL,
    state         TEXT NOT NULL DEFAULT 'queued',
    priority      INTEGER NOT NULL DEFAULT 0,
    attempts      INTEGER NOT NULL DEFAULT 0,
    max_attempts  INTEGER NOT NULL DEFAULT 5,
    timeout_s     REAL NOT NULL DEFAULT 600.0,
    lease_s       REAL NOT NULL DEFAULT 30.0,
    not_before    REAL NOT NULL DEFAULT 0.0,
    lease_owner   TEXT,
    lease_expires REAL,
    started_at    REAL,
    job_dir       TEXT,
    result        TEXT,
    error         TEXT,
    created_utc   TEXT NOT NULL,
    updated_utc   TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_jobs_claim
    ON jobs (state, not_before, priority, id);
CREATE TABLE IF NOT EXISTS events (
    seq     INTEGER PRIMARY KEY AUTOINCREMENT,
    job_id  INTEGER NOT NULL,
    event   TEXT NOT NULL,
    detail  TEXT,
    ts_utc  TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_events_job ON events (job_id, seq);
"""


def backoff_delay(
    attempt: int,
    job_id: int,
    base_s: float = 0.5,
    cap_s: float = 60.0,
    jitter: float = 0.25,
) -> float:
    """Exponential backoff with deterministic jitter.

    ``base * 2**(attempt-1)`` capped at ``cap_s``, stretched by up to
    ``jitter`` (fraction) derived from ``sha256(job_id:attempt)`` --
    deterministic so chaos runs with a fixed seed reproduce their
    retry schedule, but de-synchronized across jobs so a burst of
    simultaneous failures does not re-stampede the pool.
    """
    delay = min(cap_s, base_s * (2.0 ** max(0, attempt - 1)))
    digest = hashlib.sha256(f"{job_id}:{attempt}".encode()).digest()
    frac = int.from_bytes(digest[:8], "big") / 2**64
    return delay * (1.0 + jitter * frac)


@dataclass
class Job:
    """One job row, spec/result decoded."""

    id: int
    spec: dict
    state: str
    priority: int
    attempts: int
    max_attempts: int
    timeout_s: float
    lease_s: float
    not_before: float
    lease_owner: str | None
    lease_expires: float | None
    started_at: float | None
    job_dir: str | None
    result: dict | None
    error: str | None
    created_utc: str
    updated_utc: str

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


class JobStore:
    """The durable queue: one directory holding ``queue.db`` + job dirs.

    Connections are opened lazily per process (``fork`` safe: a child
    never reuses the parent's sqlite handle) with WAL journaling and a
    busy timeout, so the supervisor and every worker hammer the same
    file without corrupting it.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.db_path = self.root / DB_NAME
        self._conn: sqlite3.Connection | None = None
        self._conn_pid: int | None = None
        self._lock = threading.Lock()
        # executescript issues its own COMMIT; no transaction wrapper
        self._connect().executescript(_SCHEMA)

    # -- connection management ------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None or self._conn_pid != os.getpid():
            conn = sqlite3.connect(
                self.db_path, timeout=10.0, isolation_level=None,
                check_same_thread=False,
            )
            conn.row_factory = sqlite3.Row
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=10000")
            self._conn = conn
            self._conn_pid = os.getpid()
        return self._conn

    def close(self) -> None:
        if self._conn is not None and self._conn_pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._conn_pid = None

    class _Tx:
        def __init__(self, store: "JobStore"):
            self.store = store

        def __enter__(self) -> sqlite3.Connection:
            self.store._lock.acquire()
            self.conn = self.store._connect()
            self.conn.execute("BEGIN IMMEDIATE")
            return self.conn

        def __exit__(self, exc_type, exc, tb) -> None:
            try:
                if exc_type is None:
                    self.conn.execute("COMMIT")
                else:
                    self.conn.execute("ROLLBACK")
            finally:
                self.store._lock.release()

    def _tx(self) -> "JobStore._Tx":
        return JobStore._Tx(self)

    # -- helpers --------------------------------------------------------

    @staticmethod
    def _row_to_job(row: sqlite3.Row) -> Job:
        return Job(
            id=row["id"],
            spec=json.loads(row["spec"]),
            state=row["state"],
            priority=row["priority"],
            attempts=row["attempts"],
            max_attempts=row["max_attempts"],
            timeout_s=row["timeout_s"],
            lease_s=row["lease_s"],
            not_before=row["not_before"],
            lease_owner=row["lease_owner"],
            lease_expires=row["lease_expires"],
            started_at=row["started_at"],
            job_dir=row["job_dir"],
            result=json.loads(row["result"]) if row["result"] else None,
            error=row["error"],
            created_utc=row["created_utc"],
            updated_utc=row["updated_utc"],
        )

    @staticmethod
    def _event(conn: sqlite3.Connection, job_id: int, event: str,
               detail: str = "") -> None:
        conn.execute(
            "INSERT INTO events (job_id, event, detail, ts_utc)"
            " VALUES (?, ?, ?, ?)",
            (job_id, event, detail[:2000], utc_now_iso()),
        )

    def job_directory(self, job_id: int) -> Path:
        """The per-job artifact directory (checkpoints + run ledger)."""
        return self.root / "jobs" / f"job_{job_id:06d}"

    # -- producer side --------------------------------------------------

    def submit(
        self,
        spec: dict,
        priority: int = 0,
        max_attempts: int = 5,
        timeout_s: float = 600.0,
        lease_s: float = 30.0,
    ) -> Job:
        """Insert a new ``queued`` job; returns the stored row."""
        if not isinstance(spec, dict):
            raise TypeError("job spec must be a dict")
        now_iso = utc_now_iso()
        with self._tx() as conn:
            cur = conn.execute(
                "INSERT INTO jobs (spec, priority, max_attempts, timeout_s,"
                " lease_s, created_utc, updated_utc)"
                " VALUES (?, ?, ?, ?, ?, ?, ?)",
                (json.dumps(spec, sort_keys=True), priority, max_attempts,
                 timeout_s, lease_s, now_iso, now_iso),
            )
            job_id = cur.lastrowid
            job_dir = str(self.job_directory(job_id))
            conn.execute(
                "UPDATE jobs SET job_dir = ? WHERE id = ?", (job_dir, job_id)
            )
            self._event(conn, job_id, "submitted",
                        spec.get("molecule", spec.get("kind", "")))
        return self.get(job_id)

    def cancel(self, job_id: int) -> bool:
        """``queued|leased|running -> failed`` with error "cancelled"."""
        with self._tx() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = 'failed', error = 'cancelled',"
                " lease_owner = NULL, lease_expires = NULL, updated_utc = ?"
                " WHERE id = ? AND state IN ('queued', 'leased', 'running')",
                (utc_now_iso(), job_id),
            )
            if cur.rowcount:
                self._event(conn, job_id, "cancelled")
        return bool(cur.rowcount)

    # -- worker side ----------------------------------------------------

    def claim(self, owner: str, now: float | None = None) -> Job | None:
        """Atomically lease the best eligible queued job, or None.

        Eligibility: ``state = 'queued'`` and past its backoff
        (``not_before <= now``); best = highest priority, then oldest id
        (FIFO within a priority band).
        """
        now = time.time() if now is None else now
        with self._tx() as conn:
            row = conn.execute(
                "SELECT id, lease_s FROM jobs"
                " WHERE state = 'queued' AND not_before <= ?"
                " ORDER BY priority DESC, id ASC LIMIT 1",
                (now,),
            ).fetchone()
            if row is None:
                return None
            cur = conn.execute(
                "UPDATE jobs SET state = 'leased', lease_owner = ?,"
                " lease_expires = ?, updated_utc = ?"
                " WHERE id = ? AND state = 'queued'",
                (owner, now + row["lease_s"], utc_now_iso(), row["id"]),
            )
            if not cur.rowcount:  # pragma: no cover - guarded by BEGIN IMMEDIATE
                return None
            self._event(conn, row["id"], "leased", owner)
            job_id = row["id"]
        return self.get(job_id)

    def start(self, job_id: int, owner: str, now: float | None = None) -> bool:
        """``leased -> running`` (stamps ``started_at`` for the timeout)."""
        now = time.time() if now is None else now
        with self._tx() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = 'running', started_at = ?,"
                " updated_utc = ? WHERE id = ? AND state = 'leased'"
                " AND lease_owner = ?",
                (now, utc_now_iso(), job_id, owner),
            )
            if cur.rowcount:
                self._event(conn, job_id, "started", owner)
        return bool(cur.rowcount)

    def heartbeat(self, job_id: int, owner: str,
                  now: float | None = None) -> bool:
        """Renew the lease; False means the lease was lost (stop working)."""
        now = time.time() if now is None else now
        with self._tx() as conn:
            cur = conn.execute(
                "UPDATE jobs SET lease_expires = ? + lease_s, updated_utc = ?"
                " WHERE id = ? AND lease_owner = ?"
                " AND state IN ('leased', 'running')",
                (now, utc_now_iso(), job_id, owner),
            )
        return bool(cur.rowcount)

    def complete(self, job_id: int, owner: str, result: dict) -> bool:
        """``running -> done``; False = lease lost, result discarded.

        The owner guard is what makes recording idempotent: if the lease
        expired and another worker re-ran the job, at most one of the
        two guarded updates can match, so a job is never
        recorded-as-done twice.
        """
        with self._tx() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = 'done', result = ?,"
                " lease_owner = NULL, lease_expires = NULL, updated_utc = ?"
                " WHERE id = ? AND state = 'running' AND lease_owner = ?",
                (json.dumps(result, sort_keys=True, default=str),
                 utc_now_iso(), job_id, owner),
            )
            if cur.rowcount:
                self._event(conn, job_id, "done", owner)
        return bool(cur.rowcount)

    def release(self, job_id: int, owner: str, reason: str = "") -> bool:
        """Graceful give-back: ``leased|running -> queued``, no attempt
        charged (used by a worker shutting down cleanly mid-job)."""
        with self._tx() as conn:
            cur = conn.execute(
                "UPDATE jobs SET state = 'queued', lease_owner = NULL,"
                " lease_expires = NULL, started_at = NULL, not_before = 0,"
                " updated_utc = ?"
                " WHERE id = ? AND lease_owner = ?"
                " AND state IN ('leased', 'running')",
                (utc_now_iso(), job_id, owner),
            )
            if cur.rowcount:
                self._event(conn, job_id, "released", reason)
        return bool(cur.rowcount)

    def fail(
        self,
        job_id: int,
        owner: str | None,
        error: str,
        retryable: bool = True,
        now: float | None = None,
        new_spec: dict | None = None,
        event: str = "retry",
    ) -> str | None:
        """Charge an attempt; re-enqueue with backoff or quarantine.

        Returns the resulting state (``"queued"`` or ``"quarantined"``),
        or None when the guarded transition matched
        nothing (lease already lost).  ``owner=None`` bypasses the owner
        guard -- reserved for the supervisor's expiry/timeout paths,
        which act on leases that are provably dead.  ``new_spec``
        replaces the job spec on the retry (the degradation ladder).
        """
        now = time.time() if now is None else now
        owner_sql = "" if owner is None else " AND lease_owner = ?"
        with self._tx() as conn:
            row = conn.execute(
                "SELECT attempts, max_attempts, state FROM jobs"
                f" WHERE id = ? AND state IN ('leased', 'running'){owner_sql}",
                (job_id,) if owner is None else (job_id, owner),
            ).fetchone()
            if row is None:
                return None
            attempts = row["attempts"] + 1
            spec_sql = ""
            spec_args: tuple = ()
            if new_spec is not None:
                spec_sql = ", spec = ?"
                spec_args = (json.dumps(new_spec, sort_keys=True),)
            if not retryable or attempts >= row["max_attempts"]:
                # poison input (deterministic error) or exhausted
                # attempts: park it with the traceback for post-mortem
                state = "quarantined"
                conn.execute(
                    "UPDATE jobs SET state = ?, attempts = ?, error = ?,"
                    f" lease_owner = NULL, lease_expires = NULL{spec_sql},"
                    " updated_utc = ? WHERE id = ?",
                    (state, attempts, error[:20000]) + spec_args
                    + (utc_now_iso(), job_id),
                )
                self._event(conn, job_id, state, error.splitlines()[-1]
                            if error else "")
            else:
                state = "queued"
                delay = backoff_delay(attempts, job_id)
                conn.execute(
                    "UPDATE jobs SET state = 'queued', attempts = ?,"
                    " error = ?, lease_owner = NULL, lease_expires = NULL,"
                    f" started_at = NULL, not_before = ?{spec_sql},"
                    " updated_utc = ? WHERE id = ?",
                    (attempts, error[:20000], now + delay) + spec_args
                    + (utc_now_iso(), job_id),
                )
                self._event(
                    conn, job_id, event,
                    f"attempt {attempts}, backoff {delay:.2f}s",
                )
        return state

    # -- supervisor side ------------------------------------------------

    def expire_leases(self, now: float | None = None) -> list[int]:
        """Re-enqueue (or quarantine) every job whose lease has expired.

        The supervisor calls this every tick; it is the recovery path
        for workers that died (SIGKILL, OOM kill, power loss) or hung
        (stopped heartbeating).  Returns the affected job ids.
        """
        now = time.time() if now is None else now
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT id FROM jobs WHERE state IN ('leased', 'running')"
                " AND lease_expires IS NOT NULL AND lease_expires < ?",
                (now,),
            ).fetchall()
        expired = []
        for row in rows:
            state = self.fail(
                row["id"], None, "lease expired (worker died or hung)",
                retryable=True, now=now, event="lease_expired",
            )
            if state is not None:
                expired.append(row["id"])
        return expired

    def timeout_job(self, job_id: int, now: float | None = None) -> str | None:
        """Charge a wall-clock timeout against a running job."""
        return self.fail(
            job_id, None, "wall-clock timeout exceeded", retryable=True,
            now=now, event="timeout",
        )

    def running_past_timeout(self, now: float | None = None) -> list[Job]:
        """Running jobs whose wall-clock budget is exhausted."""
        now = time.time() if now is None else now
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE state = 'running'"
                " AND started_at IS NOT NULL AND started_at + timeout_s < ?",
                (now,),
            ).fetchall()
        return [self._row_to_job(r) for r in rows]

    # -- introspection --------------------------------------------------

    def get(self, job_id: int) -> Job:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        if row is None:
            raise KeyError(f"no job with id {job_id}")
        return self._row_to_job(row)

    def jobs(self, states: tuple[str, ...] | None = None) -> list[Job]:
        with self._connect() as conn:
            if states:
                marks = ",".join("?" * len(states))
                rows = conn.execute(
                    f"SELECT * FROM jobs WHERE state IN ({marks})"
                    " ORDER BY id", states,
                ).fetchall()
            else:
                rows = conn.execute(
                    "SELECT * FROM jobs ORDER BY id"
                ).fetchall()
        return [self._row_to_job(r) for r in rows]

    def counts(self) -> dict[str, int]:
        """``{state: n}`` over every known state (zeros included)."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        out = {state: 0 for state in STATES}
        for row in rows:
            out[row["state"]] = row["n"]
        return out

    def event_counts(self) -> dict[str, int]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT event, COUNT(*) AS n FROM events GROUP BY event"
            ).fetchall()
        return {row["event"]: row["n"] for row in rows}

    def events_for(self, job_id: int) -> list[tuple[str, str, str]]:
        """``(event, detail, ts_utc)`` history of one job, oldest first."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT event, detail, ts_utc FROM events"
                " WHERE job_id = ? ORDER BY seq", (job_id,),
            ).fetchall()
        return [(r["event"], r["detail"], r["ts_utc"]) for r in rows]

    def drained(self) -> bool:
        """True when no job is queued, leased, or running."""
        counts = self.counts()
        return all(counts[s] == 0 for s in ("queued", "leased", "running"))

    def stats(self) -> dict:
        """Snapshot for ``repro status`` / metrics export."""
        return {
            "path": str(self.db_path),
            "counts": self.counts(),
            "events": self.event_counts(),
        }
