"""A Global-Arrays-like distributed array for the simulated runtime.

The real GTFock phrases all communication as one-sided ``GA_Get`` /
``GA_Put`` / ``GA_Acc`` operations on 2-D block-distributed arrays, plus
the ``NGA_Read_inc`` atomic counter NWChem's centralized scheduler is
built on.  This module reproduces those semantics on a single host:

* data lives in one NumPy array (simulating the union of all process
  memories), partitioned by explicit row/column boundaries over a
  ``prow x pcol`` process grid;
* every access is attributed to the calling process, split per *owner
  block* touched (one GA call per owner, as in real GA strided access),
  and charged to the caller's virtual clock via
  :class:`~repro.runtime.network.CommStats`.

Payload integrity (``checksums=True``): every accumulate payload
carries a CRC-32 trailer, charged as 4 bytes of overhead per per-owner
transfer.  The receiver verifies the payload before applying it; a
mismatch (an attached :class:`~repro.runtime.sdc.SDCFaultState` can
corrupt payloads in flight) is rejected and the clean payload is
retransmitted on the ``retry`` flight channel -- silent wire corruption
becomes counted overhead instead of a wrong matrix.
"""

from __future__ import annotations

import math

import numpy as np

from repro.obs.flight import CH_COUNTER, CH_GA, CH_RETRY
from repro.runtime.network import CommStats
from repro.runtime.sdc import block_crc


def grid_shape(nproc: int) -> tuple[int, int]:
    """Near-square process grid factorization ``prow x pcol = nproc``."""
    if nproc < 1:
        raise ValueError(f"nproc must be >= 1, got {nproc}")
    prow = int(math.isqrt(nproc))
    while nproc % prow != 0:
        prow -= 1
    return prow, nproc // prow


def block_bounds(n: int, nblocks: int) -> np.ndarray:
    """Even 1-D partition boundaries: ``nblocks + 1`` cut points over n."""
    if nblocks < 1 or n < nblocks:
        raise ValueError(f"cannot cut {n} items into {nblocks} blocks")
    return np.array([round(i * n / nblocks) for i in range(nblocks + 1)], dtype=int)


class GlobalArray:
    """2-D block-distributed matrix with one-sided access accounting.

    Parameters
    ----------
    stats:
        Shared communication accounting (one per simulated run).
    rows, cols:
        Global matrix shape.
    row_bounds, col_bounds:
        Partition boundaries; process ``(i, j)`` of the grid owns
        ``[row_bounds[i]:row_bounds[i+1], col_bounds[j]:col_bounds[j+1]]``.
        The grid shape is implied by the boundary lengths.
    checksums:
        CRC-32 trailer on every accumulate payload, verified at the
        receiver; 4 bytes of charged overhead per per-owner transfer.
    sdc:
        Optional :class:`~repro.runtime.sdc.SDCFaultState` that may
        corrupt accumulate payloads in flight.
    monitor:
        Optional :class:`~repro.runtime.sdc.IntegrityMonitor` that
        tallies payload checks/detections/retransmits run-wide.
    """

    def __init__(
        self,
        stats: CommStats,
        rows: int,
        cols: int,
        row_bounds: np.ndarray,
        col_bounds: np.ndarray,
        *,
        checksums: bool = False,
        sdc=None,
        monitor=None,
    ):
        self.stats = stats
        self.rows = rows
        self.cols = cols
        self.row_bounds = np.asarray(row_bounds, dtype=int)
        self.col_bounds = np.asarray(col_bounds, dtype=int)
        if self.row_bounds[0] != 0 or self.row_bounds[-1] != rows:
            raise ValueError("row_bounds must span [0, rows]")
        if self.col_bounds[0] != 0 or self.col_bounds[-1] != cols:
            raise ValueError("col_bounds must span [0, cols]")
        if np.any(np.diff(self.row_bounds) <= 0) or np.any(np.diff(self.col_bounds) <= 0):
            raise ValueError("partition boundaries must be strictly increasing")
        self.prow = len(self.row_bounds) - 1
        self.pcol = len(self.col_bounds) - 1
        self.data = np.zeros((rows, cols))
        #: tags of accumulate ops already applied (exactly-once dedup)
        self._applied_tags: set = set()
        #: open epochs: staged (r0, c0, block) accumulates, not yet visible
        self._staged: dict = {}
        self.checksums = checksums
        self.sdc = sdc
        self.monitor = monitor
        #: accumulate payloads CRC-verified at the receiver
        self.checksum_checks = 0
        #: payloads rejected for a CRC mismatch (and retransmitted)
        self.checksum_rejects = 0

    @property
    def nproc(self) -> int:
        return self.prow * self.pcol

    def proc_id(self, gi: int, gj: int) -> int:
        """Linear process id of grid position (gi, gj) (row major)."""
        return gi * self.pcol + gj

    def grid_coords(self, proc: int) -> tuple[int, int]:
        return divmod(proc, self.pcol)

    def owner(self, i: int, j: int) -> int:
        """Linear id of the process owning element (i, j)."""
        if not (0 <= i < self.rows and 0 <= j < self.cols):
            raise IndexError(f"({i}, {j}) outside {self.rows}x{self.cols}")
        gi = int(np.searchsorted(self.row_bounds, i, side="right")) - 1
        gj = int(np.searchsorted(self.col_bounds, j, side="right")) - 1
        return self.proc_id(gi, gj)

    def local_slice(self, proc: int) -> tuple[slice, slice]:
        """The (row, col) slices owned by ``proc``."""
        gi, gj = self.grid_coords(proc)
        return (
            slice(int(self.row_bounds[gi]), int(self.row_bounds[gi + 1])),
            slice(int(self.col_bounds[gj]), int(self.col_bounds[gj + 1])),
        )

    # -- one-sided operations -------------------------------------------------

    def _owners_touched(self, r0: int, r1: int, c0: int, c1: int, proc: int):
        """Split a rectangular request into per-owner sub-rectangles.

        Yields ``(owner, rows_slice, cols_slice)``; mirrors how a GA
        strided get issues one transfer per owning process.
        """
        if not (0 <= r0 < r1 <= self.rows and 0 <= c0 < c1 <= self.cols):
            raise IndexError(f"bad request [{r0}:{r1}, {c0}:{c1}]")
        gi0 = int(np.searchsorted(self.row_bounds, r0, side="right")) - 1
        gi1 = int(np.searchsorted(self.row_bounds, r1 - 1, side="right")) - 1
        gj0 = int(np.searchsorted(self.col_bounds, c0, side="right")) - 1
        gj1 = int(np.searchsorted(self.col_bounds, c1 - 1, side="right")) - 1
        for gi in range(gi0, gi1 + 1):
            rs = slice(
                max(r0, int(self.row_bounds[gi])),
                min(r1, int(self.row_bounds[gi + 1])),
            )
            for gj in range(gj0, gj1 + 1):
                cs = slice(
                    max(c0, int(self.col_bounds[gj])),
                    min(c1, int(self.col_bounds[gj + 1])),
                )
                yield self.proc_id(gi, gj), rs, cs

    def _charge(
        self,
        proc: int,
        r0: int,
        r1: int,
        c0: int,
        c1: int,
        channel: str,
        want_acks: bool = False,
        pad_bytes: int = 0,
    ) -> int:
        """Charge a request split per owner; returns ack-lost attempt count.

        When a fault state is attached, each per-owner transfer first
        draws its transient failures (retries charged on the ``retry``
        channel by :meth:`CommStats.charge_fault_attempts`); the base
        charge then skips the fault consultation to avoid double draws.
        ``pad_bytes`` is per-owner framing overhead (the CRC trailer).
        """
        es = self.stats.config.element_size
        lost = 0
        for owner, rs, cs in self._owners_touched(r0, r1, c0, c1, proc):
            nbytes = (rs.stop - rs.start) * (cs.stop - cs.start) * es + pad_bytes
            remote = owner != proc
            if remote and self.stats.faults is not None:
                lost += self.stats.charge_fault_attempts(
                    proc, nbytes, ncalls=1, want_acks=want_acks
                )
            self.stats.charge_comm(
                proc, nbytes, ncalls=1, remote=remote,
                channel=channel, draw_faults=False,
            )
        return lost

    def get(
        self, proc: int, r0: int, r1: int, c0: int, c1: int, channel: str = CH_GA
    ) -> np.ndarray:
        """One-sided read of ``[r0:r1, c0:c1]`` by ``proc`` (GA_Get)."""
        self._charge(proc, r0, r1, c0, c1, channel)
        return self.data[r0:r1, c0:c1].copy()

    def put(
        self, proc: int, r0: int, c0: int, block: np.ndarray, channel: str = CH_GA
    ) -> None:
        """One-sided write (GA_Put).  Idempotent: retries are harmless."""
        r1, c1 = r0 + block.shape[0], c0 + block.shape[1]
        self._charge(proc, r0, r1, c0, c1, channel)
        self.data[r0:r1, c0:c1] = block

    def acc(
        self,
        proc: int,
        r0: int,
        c0: int,
        block: np.ndarray,
        channel: str = CH_GA,
        tag=None,
        epoch=None,
    ) -> None:
        """One-sided atomic accumulate (GA_Acc): ``A[region] += block``.

        ``GA_Acc`` is *not* idempotent, which makes it the one op where
        transient failures are dangerous: a failed attempt may have
        applied its addition before the ack was lost, and a blind retry
        then double-counts.  Two protocol layers make it exactly-once:

        * ``tag`` -- a unique op id the target remembers; attempts (and
          any later blind retry) carrying an already-applied tag are
          dropped.  Untagged accumulates under injected ack loss
          double-apply -- deliberately, so tests can demonstrate the
          hazard the tags close.
        * ``epoch`` -- stage the addition into an open epoch (see
          :meth:`begin_epoch`) instead of applying it; only
          :meth:`commit_epoch` makes it visible.  A rank that dies
          mid-flush leaves an uncommitted epoch behind, so its partial
          flush is never double-counted against the recovery re-flush.

        With ``checksums`` enabled, the payload's CRC-32 trailer is
        verified at the receiver before the addition is applied; a
        corrupted-in-flight payload is rejected and retransmitted on
        the ``retry`` channel, so the applied value is always clean.
        Without checksums, an attached ``sdc`` state corrupts payloads
        *silently* -- deliberately, so tests can demonstrate the hazard
        the trailer closes.
        """
        r1, c1 = r0 + block.shape[0], c0 + block.shape[1]
        pad = 4 if self.checksums else 0
        lost = self._charge(
            proc, r0, r1, c0, c1, channel, want_acks=True, pad_bytes=pad
        )
        if self.sdc is not None:
            wire = self.sdc.corrupt_payload(block)
        else:
            wire = block
        if self.checksums:
            self.checksum_checks += 1
            if self.monitor is not None:
                self.monitor.record_check("ga_payload_crc")
            if block_crc(wire) != block_crc(block):
                # receiver rejects the damaged payload; the clean one is
                # retransmitted (charged as a retry) and applied instead
                self.checksum_rejects += 1
                self._charge(
                    proc, r0, r1, c0, c1, CH_RETRY, pad_bytes=pad
                )
                if self.monitor is not None:
                    self.monitor.record_detection("ga_payload")
                    self.monitor.record_recovery("retransmit")
                wire = block
        block = wire
        if tag is not None:
            if tag in self._applied_tags:
                return
            self._applied_tags.add(tag)
            times = 1  # ack-lost attempts were deduplicated at the target
        else:
            times = 1 + lost  # every applied-but-unacked attempt double-counts
        if times == 0:
            return
        contribution = block if times == 1 else times * block
        if epoch is not None:
            try:
                self._staged[epoch].append((r0, c0, contribution.copy()))
            except KeyError:
                raise KeyError(f"epoch {epoch!r} is not open") from None
        else:
            self.data[r0:r1, c0:c1] += contribution

    # -- epoch protocol (exactly-once flush) ----------------------------------

    def begin_epoch(self, key) -> None:
        """Open an accumulate epoch: subsequent ``acc(..., epoch=key)``
        calls stage their additions invisibly until commit."""
        if key in self._staged:
            raise ValueError(f"epoch {key!r} is already open")
        self._staged[key] = []

    def commit_epoch(self, key) -> int:
        """Atomically apply every staged addition of an epoch; returns
        the number of staged ops committed."""
        staged = self._staged.pop(key)
        for r0, c0, block in staged:
            self.data[r0 : r0 + block.shape[0], c0 : c0 + block.shape[1]] += block
        return len(staged)

    def abort_epoch(self, key) -> int:
        """Discard an epoch's staged additions (e.g. its rank died
        mid-flush); returns how many staged ops were dropped."""
        return len(self._staged.pop(key, []))

    # -- whole-array helpers (no accounting; test/setup use) -------------------

    def load(self, full: np.ndarray) -> None:
        """Initialize the distributed contents (collective setup, free)."""
        if full.shape != (self.rows, self.cols):
            raise ValueError(f"shape {full.shape} != {(self.rows, self.cols)}")
        self.data[:] = full

    def to_numpy(self) -> np.ndarray:
        """Gather the full matrix (verification helper, not accounted)."""
        return self.data.copy()


class SharedCounter:
    """The Global Arrays ``NGA_Read_inc`` atomic counter.

    NWChem's centralized dynamic scheduler is a single shared counter
    that every process hits once per task; each access is atomic and
    serializes at the owning process (Sec IV-C discusses the resulting
    scheduler overhead: ~112k accesses for C100H202 at 3888 cores vs 349
    per-queue accesses for GTFock's distributed queues).
    """

    def __init__(self, stats: CommStats, owner: int = 0):
        self.stats = stats
        self.owner = owner
        self.value = 0
        self.accesses = 0
        #: time at which the counter's owner is next free (serialization)
        self.server_free = 0.0

    def read_inc(self, proc: int) -> int:
        """Atomically fetch-and-increment; models queueing at the owner.

        The caller pays a round-trip latency plus any queueing delay
        behind other processes' outstanding increments.
        """
        cfg = self.stats.config
        self.accesses += 1
        self.stats.calls[proc] += 1
        self.stats.remote_calls[proc] += 1
        arrival = self.stats.clock[proc] + cfg.latency
        start = max(arrival, self.server_free)
        self.server_free = start + cfg.queue_service
        finish = self.server_free + cfg.latency
        dt = finish - self.stats.clock[proc]
        self.stats.clock[proc] += dt
        self.stats.comm_time[proc] += dt
        self.stats.flight.record(
            proc, CH_COUNTER, 0, 1, dt, t=float(self.stats.clock[proc])
        )
        out = self.value
        self.value += 1
        return out
