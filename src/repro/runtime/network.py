"""Per-process communication accounting for the simulated runtime.

Tracks, for every simulated process, the quantities the paper reports:

* Table VI: communication volume (bytes moved, *including* local
  transfers -- the paper measures totals including local for fairness),
* Table VII: number of Global Arrays one-sided calls,

plus the virtual clock each process accumulates.  Data movement itself is
performed by :class:`repro.runtime.ga.GlobalArray`; this class only does
cost/statistics bookkeeping so that numeric execution and timing-only
simulation share one accounting path.
"""

from __future__ import annotations

import numpy as np

from repro.obs.flight import CH_GA, CH_RETRY, CH_STEAL_D, FlightRecorder
from repro.runtime.faults import FaultState
from repro.runtime.machine import MachineConfig


class CommStats:
    """Mutable per-process communication counters and clocks.

    Every charge carries a *channel* tag (see :mod:`repro.obs.flight`)
    and is mirrored into the attached :class:`FlightRecorder`, so the
    global Table VI/VII counters and the per-rank/per-channel breakdown
    can never drift apart.

    When a :class:`~repro.runtime.faults.FaultState` is attached, every
    remote charge first consults it: transient failures re-send the
    payload (counted in the global Table VI/VII counters *and* on the
    ``retry`` channel, preserving the exact-decomposition invariant)
    and wait out an exponential backoff on the virtual clock; injected
    delivery delays are charged as ``retry``-channel time.
    """

    def __init__(
        self,
        nproc: int,
        config: MachineConfig,
        flight: FlightRecorder | None = None,
        faults: FaultState | None = None,
    ):
        if nproc < 1:
            raise ValueError(f"need at least one process, got {nproc}")
        if faults is not None and faults.nproc != nproc:
            raise ValueError(
                f"fault state activated for {faults.nproc} ranks, run has {nproc}"
            )
        self.nproc = nproc
        self.config = config
        self.faults = faults
        #: per-rank/per-channel breakdown of everything charged below
        self.flight = flight if flight is not None else FlightRecorder(nproc)
        self.calls = np.zeros(nproc, dtype=np.int64)
        self.bytes = np.zeros(nproc, dtype=np.int64)
        self.remote_calls = np.zeros(nproc, dtype=np.int64)
        self.remote_bytes = np.zeros(nproc, dtype=np.int64)
        #: virtual per-process clock (seconds)
        self.clock = np.zeros(nproc)
        #: portion of the clock spent in communication
        self.comm_time = np.zeros(nproc)
        #: portion of the clock spent computing
        self.comp_time = np.zeros(nproc)

    def _check(self, proc: int) -> None:
        if not 0 <= proc < self.nproc:
            raise IndexError(f"process {proc} out of range [0, {self.nproc})")

    def charge_fault_attempts(
        self,
        proc: int,
        nbytes: float,
        ncalls: int = 1,
        want_acks: bool = False,
    ) -> int:
        """Draw and charge transient failures + delay for one remote op.

        Each failed attempt re-sends the payload and waits out an
        exponential backoff, both charged to the caller's virtual clock
        and recorded on the ``retry`` channel (payload bytes/calls also
        count toward the global Table VI/VII counters: they crossed the
        wire).  Returns the number of failed attempts whose mutation
        *applied* but whose ack was lost (only drawn when ``want_acks``
        -- the accumulate exactly-once hazard; see ``GlobalArray.acc``).
        """
        if self.faults is None:
            return 0
        self._check(proc)
        nfail = self.faults.draw_failures(proc)
        for k in range(nfail):
            dt = self.config.transfer_time(nbytes, ncalls) + self.faults.backoff(k)
            self.calls[proc] += ncalls
            self.bytes[proc] += int(nbytes)
            self.remote_calls[proc] += ncalls
            self.remote_bytes[proc] += int(nbytes)
            self.clock[proc] += dt
            self.comm_time[proc] += dt
            self.faults.retries[proc] += 1
            self.flight.record(
                proc, CH_RETRY, int(nbytes), ncalls, dt, t=float(self.clock[proc])
            )
        lost = self.faults.draw_ack_lost(proc, nfail) if want_acks else 0
        delay = self.faults.draw_delay(proc)
        if delay > 0.0:
            self.clock[proc] += delay
            self.comm_time[proc] += delay
            self.flight.record(
                proc, CH_RETRY, 0, 0, delay, t=float(self.clock[proc])
            )
        return lost

    def charge_comm(
        self,
        proc: int,
        nbytes: float,
        ncalls: int = 1,
        remote: bool = True,
        channel: str = CH_GA,
        draw_faults: bool = True,
    ) -> float:
        """Account a communication operation; returns the time charged.

        ``draw_faults=False`` skips the fault consultation -- used by
        callers (``GlobalArray``) that already drew and charged this
        op's failures via :meth:`charge_fault_attempts`.
        """
        self._check(proc)
        if remote and draw_faults and self.faults is not None:
            self.charge_fault_attempts(proc, nbytes, ncalls)
        self.calls[proc] += ncalls
        self.bytes[proc] += int(nbytes)
        dt = 0.0
        if remote:
            self.remote_calls[proc] += ncalls
            self.remote_bytes[proc] += int(nbytes)
            dt = self.config.transfer_time(nbytes, ncalls)
        else:
            # local transfers still cost memory bandwidth; model as a
            # fraction of network transfer cost with no latency
            dt = nbytes / (10.0 * self.config.bandwidth)
        self.clock[proc] += dt
        self.comm_time[proc] += dt
        self.flight.record(
            proc, channel, int(nbytes), ncalls, dt, t=float(self.clock[proc])
        )
        return dt

    def charge_steal(
        self,
        proc: int,
        nbytes: float,
        ncalls: int = 1,
        channel: str = CH_STEAL_D,
    ) -> float:
        """Account a steal transfer's counters; the scheduler applies the time.

        Unlike :meth:`charge_comm` this does *not* advance the clock --
        the work-stealing scheduler owns the thief's restart time and
        adds the returned transfer time itself (see ``run_work_stealing``).
        Transient-failure retries are folded into the returned time the
        same way (counted on the ``retry`` channel).
        """
        self._check(proc)
        extra = 0.0
        if self.faults is not None:
            nfail = self.faults.draw_failures(proc)
            for k in range(nfail):
                w = self.config.transfer_time(nbytes, ncalls) + self.faults.backoff(k)
                self.calls[proc] += ncalls
                self.bytes[proc] += int(nbytes)
                self.remote_calls[proc] += ncalls
                self.remote_bytes[proc] += int(nbytes)
                self.faults.retries[proc] += 1
                self.flight.record(
                    proc, CH_RETRY, int(nbytes), ncalls, w, t=float(self.clock[proc])
                )
                extra += w
        self.calls[proc] += ncalls
        self.bytes[proc] += int(nbytes)
        self.remote_calls[proc] += ncalls
        self.remote_bytes[proc] += int(nbytes)
        dt = self.config.transfer_time(nbytes, ncalls)
        self.flight.record(
            proc, channel, int(nbytes), ncalls, dt, t=float(self.clock[proc])
        )
        return dt + extra

    def charge_compute(self, proc: int, seconds: float) -> None:
        """Advance a process's clock by pure computation time."""
        self._check(proc)
        if seconds < 0:
            raise ValueError("negative compute time")
        self.clock[proc] += seconds
        self.comp_time[proc] += seconds

    def barrier(self) -> float:
        """Synchronize all clocks to the maximum; returns the barrier time."""
        t = float(self.clock.max())
        self.clock[:] = t
        return t

    # -- report helpers ------------------------------------------------------

    def volume_mb_per_process(self) -> float:
        """Average communication volume in MB/process (Table VI metric)."""
        return float(self.bytes.mean()) / 1e6

    def calls_per_process(self) -> float:
        """Average number of GA calls/process (Table VII metric)."""
        return float(self.calls.mean())

    def load_balance(self) -> float:
        """l = max/mean of the per-process clocks (Table VIII metric)."""
        avg = float(self.clock.mean())
        return float(self.clock.max()) / avg if avg > 0 else 1.0

    def summary(self) -> dict:
        total = self.comm_time + self.comp_time
        busy = float(total.sum())
        return {
            "nproc": self.nproc,
            "avg_volume_mb": self.volume_mb_per_process(),
            "avg_calls": self.calls_per_process(),
            "avg_comm_time": float(self.comm_time.mean()),
            "avg_comp_time": float(self.comp_time.mean()),
            "makespan": float(self.clock.max()),
            "load_balance": self.load_balance(),
            "comm_fraction": float(self.comm_time.sum()) / busy if busy > 0 else 0.0,
        }
