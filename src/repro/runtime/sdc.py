"""Silent-data-corruption (SDC) fault family + the integrity layer.

PR 4/5/9 made the stack survive *loud* failures: dead ranks, NaN
numerics, killed workers.  This module covers the fourth leg -- silent
corruption that still parses: a bit-flipped checkpoint file, a torn
store block, a damaged accumulate payload, a memory flip in the Fock
matrix between iterations.  Nothing raises; the bytes are simply wrong.

Two halves, mirroring :mod:`repro.runtime.faults`:

* **Injection** -- :class:`SDCFaultPlan` / :class:`SDCFaultState`, a
  declarative seeded plan that flips bits in checkpoint files
  post-write, on-disk ERI store blocks, GA accumulate payloads in
  flight, and in-memory F/D matrices between SCF iterations.  One
  seeded :class:`numpy.random.Generator` drives every draw, so a chaos
  run is reproducible from its seed alone.  In-memory matrix flips
  target *exponent* bits of a significant element (and off-diagonal
  positions for symmetric targets), modelling the SDC that matters: a
  low-mantissa flip is numerically harmless and genuinely below any
  detector's floor, while an exponent flip silently wrecks the run.
* **Detection** -- :class:`IntegrityMonitor`, the run-wide accounting
  object behind the ``integrity=`` knob: cheap ABFT-style algebraic
  detectors on the hot path (F/D symmetry residual, Tr(D S) = n_occ)
  plus counters for every checksum layer (store CRCs, checkpoint
  digests, GA payload checksums) and every recovery taken (recompute,
  rollback, quarantine).  :func:`export_integrity
  <repro.obs.metrics.export_integrity>` bridges the counters to
  metrics; ``repro chaos --family sdc`` asserts zero silent
  acceptances (:mod:`repro.fock.chaos`); ``repro verify`` audits a
  directory offline (:mod:`repro.obs.verify`).

Checksums use CRC-32 (:func:`zlib.crc32` -- zero-dependency and
C-speed; a production deployment would use hardware CRC32C, same
framing) for per-block/per-payload framing and SHA-256 for whole-file
digests.  See ``docs/ROBUSTNESS.md`` ("Silent data corruption") for
the threat model, detector costs, and the recovery ladder.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np


class IntegrityError(RuntimeError):
    """Corruption was detected and no recovery rung could repair it.

    The service worker maps this to a non-retryable failure
    (quarantine): re-running a job against the same corrupt state
    cannot help, a human must look at the artifacts.
    """


# ---------------------------------------------------------------------------
# checksum helpers (shared by store framing, GA payloads, checkpoints)
# ---------------------------------------------------------------------------


def block_crc(a: np.ndarray) -> int:
    """CRC-32 of one array's float64 bytes (payload/block framing)."""
    return zlib.crc32(np.ascontiguousarray(a, dtype=np.float64).tobytes())


def crc_rows(flat: np.ndarray) -> np.ndarray:
    """Per-row CRC-32 of a 2-D float64 array, as ``uint32``."""
    flat = np.ascontiguousarray(flat, dtype=np.float64)
    out = np.empty(flat.shape[0], dtype=np.uint32)
    for i in range(flat.shape[0]):
        out[i] = zlib.crc32(flat[i].tobytes())
    return out


def flip_bit_in_file(path: str | Path, rng: np.random.Generator) -> int:
    """Flip one seeded-random bit of a file in place; returns the offset."""
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file {path}")
    pos = int(rng.integers(len(data)))
    data[pos] ^= 1 << int(rng.integers(8))
    path.write_bytes(bytes(data))
    return pos


def _flip_exponent_bit(x: float, rng: np.random.Generator) -> float:
    """Flip one exponent bit of a float64 -- a large, *finite-looking*
    change (the value scales by a power of two, it does not NaN)."""
    bits = np.float64(x).view(np.uint64)
    bit = 52 + int(rng.integers(11))  # one of the 11 exponent bits
    return float((bits ^ np.uint64(1) << np.uint64(bit)).view(np.float64))


# ---------------------------------------------------------------------------
# the sdc fault family
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SDCFaultPlan:
    """Declarative silent-corruption faults, seeded like every plan.

    Parameters
    ----------
    seed:
        Seed of the generator behind every corruption draw.
    checkpoint_flip_rate:
        Per written snapshot file, the probability that one random bit
        of the ``.npz`` is flipped *after* the atomic rename (the
        bad-disk / torn-page model).  The file still exists and may
        still parse -- only the payload digest can tell.
    store_flips:
        Number of distinct on-disk ERI store blocks to bit-flip (drawn
        once per store, via :meth:`SDCFaultState.corrupt_store_dir`).
    payload_flip_rate:
        Per GA accumulate, the probability the payload is corrupted in
        flight (one exponent-bit flip of one element).
    fock_flip_iterations / density_flip_iterations:
        SCF iteration numbers (1-based) at which one significant
        element of the freshly built Fock (resp. density) matrix gets
        an exponent-bit flip -- the in-memory corruption the ABFT
        detectors must catch.  Each (iteration, target) fault fires
        exactly once, so a detected-and-rebuilt matrix is clean.
    max_corruptions:
        Hard cap on total injected corruptions (0 = unlimited).
    """

    seed: int = 0
    checkpoint_flip_rate: float = 0.0
    store_flips: int = 0
    payload_flip_rate: float = 0.0
    fock_flip_iterations: tuple[int, ...] = ()
    density_flip_iterations: tuple[int, ...] = ()
    max_corruptions: int = 0

    def __post_init__(self) -> None:
        for name in ("checkpoint_flip_rate", "payload_flip_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.store_flips < 0:
            raise ValueError(f"store_flips must be >= 0, got {self.store_flips}")
        for name in ("fock_flip_iterations", "density_flip_iterations"):
            for it in getattr(self, name):
                if it < 1:
                    raise ValueError(
                        f"{name} entries are 1-based iteration numbers, got {it}"
                    )
        if self.max_corruptions < 0:
            raise ValueError(
                f"max_corruptions must be >= 0, got {self.max_corruptions}"
            )

    @property
    def has_faults(self) -> bool:
        return bool(
            self.checkpoint_flip_rate
            or self.store_flips
            or self.payload_flip_rate
            or self.fock_flip_iterations
            or self.density_flip_iterations
        )

    def activate(self) -> "SDCFaultState":
        return SDCFaultState(self)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.checkpoint_flip_rate:
            parts.append(f"ckpt_flip={self.checkpoint_flip_rate:g}")
        if self.store_flips:
            parts.append(f"store_flips={self.store_flips}")
        if self.payload_flip_rate:
            parts.append(f"payload_flip={self.payload_flip_rate:g}")
        if self.fock_flip_iterations:
            parts.append(
                "fock_flip@it="
                + ",".join(str(i) for i in self.fock_flip_iterations)
            )
        if self.density_flip_iterations:
            parts.append(
                "density_flip@it="
                + ",".join(str(i) for i in self.density_flip_iterations)
            )
        if self.max_corruptions:
            parts.append(f"max={self.max_corruptions}")
        return " ".join(parts)


class SDCFaultState:
    """An activated :class:`SDCFaultPlan`: seeded rng + injection counters."""

    def __init__(self, plan: SDCFaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        #: checkpoint files bit-flipped post-write
        self.files_corrupted = 0
        #: on-disk store blocks bit-flipped
        self.blocks_corrupted = 0
        #: GA accumulate payloads corrupted in flight
        self.payloads_corrupted = 0
        #: in-memory F/D matrices corrupted between iterations
        self.matrices_corrupted = 0
        #: (iteration, target) matrix faults that already fired
        self._fired: set[tuple[int, str]] = set()

    @property
    def injections_total(self) -> int:
        return (
            self.files_corrupted
            + self.blocks_corrupted
            + self.payloads_corrupted
            + self.matrices_corrupted
        )

    def _budget_left(self) -> bool:
        cap = self.plan.max_corruptions
        return cap == 0 or self.injections_total < cap

    def corrupt_file(self, path: str | Path) -> bool:
        """Maybe flip one bit of a just-written file; True if it fired.

        The draw consumes the rng whether or not corruption fires, so
        an sdc run is reproducible from the plan's seed alone.
        """
        if self.plan.checkpoint_flip_rate <= 0.0:
            return False
        fire = self.rng.random() < self.plan.checkpoint_flip_rate
        if not fire or not self._budget_left():
            return False
        flip_bit_in_file(path, self.rng)
        self.files_corrupted += 1
        return True

    def corrupt_store_dir(self, path: str | Path) -> int:
        """Bit-flip ``store_flips`` distinct blocks of an on-disk ERI store.

        Operates directly on ``blocks.bin`` using the offsets/sizes in
        ``index.npz`` (no :class:`~repro.integrals.store.ERIStore`
        needed), modelling a disk that rots under a finalized store.
        Returns how many blocks were corrupted.
        """
        path = Path(path)
        if self.plan.store_flips <= 0:
            return 0
        with np.load(path / "index.npz") as idx:
            offsets = idx["offsets"]
            sizes = idx["sizes"]
        nblocks = int(offsets.size)
        nflips = min(self.plan.store_flips, nblocks)
        victims = self.rng.choice(nblocks, size=nflips, replace=False)
        with open(path / "blocks.bin", "r+b") as fh:
            for b in victims:
                if not self._budget_left():
                    break
                elem = int(offsets[b] + self.rng.integers(int(sizes[b])))
                byte = elem * 8 + int(self.rng.integers(8))
                fh.seek(byte)
                old = fh.read(1)[0]
                fh.seek(byte)
                fh.write(bytes([old ^ (1 << int(self.rng.integers(8)))]))
                self.blocks_corrupted += 1
        return self.blocks_corrupted

    def corrupt_payload(self, block: np.ndarray) -> np.ndarray:
        """Maybe corrupt one GA accumulate payload in flight."""
        if self.plan.payload_flip_rate <= 0.0:
            return block
        fire = self.rng.random() < self.plan.payload_flip_rate
        if not fire or block.size == 0 or not self._budget_left():
            return block
        out = np.array(block, dtype=np.float64)
        flat = out.reshape(-1)
        i = int(self.rng.integers(flat.size))
        flat[i] = _flip_exponent_bit(float(flat[i]), self.rng)
        self.payloads_corrupted += 1
        return out

    def corrupt_matrix(
        self, a: np.ndarray, iteration: int, which: str
    ) -> np.ndarray:
        """Maybe exponent-flip one significant element of an SCF matrix.

        Fires at most once per (iteration, target).  The victim element
        is drawn among entries with non-negligible magnitude (an
        exponent flip of a hard zero yields a denormal -- real, but
        numerically invisible and below any detector's floor), and
        off-diagonal positions are preferred so symmetric targets stay
        detectable by the symmetry residual.
        """
        targets = (
            self.plan.fock_flip_iterations
            if which == "fock"
            else self.plan.density_flip_iterations
        )
        key = (int(iteration), which)
        if iteration not in targets or key in self._fired:
            return a
        if a.size == 0 or not self._budget_left():
            return a
        self._fired.add(key)
        out = np.array(a, dtype=np.float64)
        scale = float(np.max(np.abs(out)))
        significant = np.abs(out) > 1e-6 * max(scale, 1e-300)
        if out.ndim == 2 and out.shape[0] == out.shape[1]:
            offdiag = ~np.eye(out.shape[0], dtype=bool)
            if (significant & offdiag).any():
                significant &= offdiag
        idx = np.flatnonzero(significant.reshape(-1))
        if idx.size == 0:
            idx = np.arange(out.size)
        flat = out.reshape(-1)
        i = int(idx[self.rng.integers(idx.size)])
        flat[i] = _flip_exponent_bit(float(flat[i]), self.rng)
        self.matrices_corrupted += 1
        return out

    def summary(self) -> dict:
        """Injection counters for reports and the chaos CLI."""
        return {
            "files_corrupted": int(self.files_corrupted),
            "blocks_corrupted": int(self.blocks_corrupted),
            "payloads_corrupted": int(self.payloads_corrupted),
            "matrices_corrupted": int(self.matrices_corrupted),
            "injections_total": int(self.injections_total),
            "plan": self.plan.describe(),
        }


def random_sdc_plan(seed: int) -> SDCFaultPlan:
    """Seeded random :class:`SDCFaultPlan` for ``repro chaos --family sdc``.

    Corrupts a handful of store blocks, roughly a third of the written
    checkpoints, and one early Fock and density matrix each; the same
    seed always yields the same plan.
    """
    rng = np.random.default_rng(seed)
    return SDCFaultPlan(
        seed=seed,
        checkpoint_flip_rate=0.34,
        store_flips=int(rng.integers(2, 5)),
        payload_flip_rate=0.05,
        fock_flip_iterations=(int(rng.integers(2, 4)),),
        density_flip_iterations=(int(rng.integers(4, 6)),),
        max_corruptions=64,
    )


# ---------------------------------------------------------------------------
# detection: ABFT-style detectors + run-wide integrity accounting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IntegrityConfig:
    """Tolerances of the hot-path algebraic detectors.

    ``sym_tol`` bounds the relative symmetry residual
    ``max|A - A^T| / max(1, max|A|)`` of F and D; ``trace_tol`` bounds
    ``|Tr(D S) - n_occ|`` (both are exact identities of RHF up to
    rounding, so the defaults sit orders of magnitude above honest
    float64 noise and orders below any exponent-bit flip).
    """

    sym_tol: float = 1e-8
    trace_tol: float = 1e-6


class IntegrityMonitor:
    """Run-wide integrity accounting behind the ``integrity=`` knob.

    One instance per run.  The hot-path detectors
    (:meth:`check_fock` / :meth:`check_density`) return False on
    detection *and* count it; the checksum layers (store CRCs,
    checkpoint digests, GA payload checksums) report their detections
    via :meth:`record_detection`, and every recovery rung taken is
    tallied via :meth:`record_recovery` -- so one ``summary()`` carries
    the complete detect/recover story for metrics, reports, and the
    chaos gate.
    """

    def __init__(
        self,
        overlap: np.ndarray | None = None,
        nocc: int | None = None,
        config: IntegrityConfig | None = None,
    ):
        self.overlap = overlap
        self.nocc = nocc
        self.config = config or IntegrityConfig()
        #: detector runs, keyed by detector name
        self.checks: dict[str, int] = {}
        #: corruptions detected, keyed by kind
        self.detections: dict[str, int] = {}
        #: recoveries taken, keyed by action
        self.recoveries: dict[str, int] = {}

    # -- accounting ----------------------------------------------------------

    def record_check(self, detector: str, n: int = 1) -> None:
        self.checks[detector] = self.checks.get(detector, 0) + n

    def record_detection(self, kind: str, n: int = 1) -> None:
        if n > 0:
            self.detections[kind] = self.detections.get(kind, 0) + n

    def record_recovery(self, action: str, n: int = 1) -> None:
        if n > 0:
            self.recoveries[action] = self.recoveries.get(action, 0) + n

    @property
    def checks_total(self) -> int:
        return sum(self.checks.values())

    @property
    def detections_total(self) -> int:
        return sum(self.detections.values())

    @property
    def recoveries_total(self) -> int:
        return sum(self.recoveries.values())

    # -- hot-path ABFT detectors --------------------------------------------

    def _symmetry_ok(self, a: np.ndarray) -> bool:
        residual = float(np.max(np.abs(a - a.T)))
        return residual <= self.config.sym_tol * max(1.0, float(np.max(np.abs(a))))

    def check_fock(self, f: np.ndarray, iteration: int) -> bool:
        """F must be finite and symmetric (F = F^T is exact in RHF)."""
        self.record_check("fock_symmetry")
        ok = bool(np.isfinite(f).all()) and self._symmetry_ok(f)
        if not ok:
            self.record_detection("fock_matrix")
        return ok

    def check_density(self, d: np.ndarray, iteration: int) -> bool:
        """D must be finite, symmetric, and carry Tr(D S) = n_occ."""
        self.record_check("density_symmetry")
        ok = bool(np.isfinite(d).all()) and self._symmetry_ok(d)
        if ok and self.overlap is not None and self.nocc is not None:
            self.record_check("density_trace")
            tr = float(np.sum(d * self.overlap.T))
            ok = abs(tr - self.nocc) <= self.config.trace_tol * max(1.0, self.nocc)
        if not ok:
            self.record_detection("density_matrix")
        return ok

    def check_chunk_bound(
        self, blocks: np.ndarray, bound: float, slack: float = 10.0
    ) -> bool:
        """Schwarz-bound detector: no ERI chunk element may exceed its
        Cauchy-Schwarz bound (times ``slack`` for rounding headroom)."""
        self.record_check("schwarz_bound")
        ok = float(np.max(np.abs(blocks))) <= slack * bound if blocks.size else True
        if not ok:
            self.record_detection("eri_chunk")
        return ok

    # -- reporting -----------------------------------------------------------

    def summary(self) -> dict:
        """Integrity counters for metrics, reports, and the chaos CLI."""
        return {
            "checks": dict(sorted(self.checks.items())),
            "detections": dict(sorted(self.detections.items())),
            "recoveries": dict(sorted(self.recoveries.items())),
            "checks_total": self.checks_total,
            "detections_total": self.detections_total,
            "recoveries_total": self.recoveries_total,
        }
