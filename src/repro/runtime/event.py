"""Minimal discrete-event core used by the scheduler simulations.

A thin, allocation-light wrapper over :mod:`heapq` with lazy
invalidation: events carry a version stamp per key, and stale events are
skipped on pop.  This is all the work-stealing and centralized-scheduler
simulations need -- they only track "process finishes its queue at time t"
events that get invalidated when a thief mutates the queue.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable


class EventQueue:
    """Time-ordered event queue with per-key lazy invalidation.

    ``perturb`` is an optional hook consulted on every :meth:`schedule`:
    it maps ``(time, key) -> time'`` and models delayed delivery of the
    underlying completion message (fault injection supplies
    :meth:`~repro.runtime.faults.FaultState.perturb_event` here).  A
    perturbation may only postpone an event, never move it earlier.

    ``observer`` is an optional dependency-capture hook invoked as
    ``observer(action, time, key)`` with ``action`` one of
    ``"schedule"`` / ``"cancel"`` / ``"pop"``.  The critical-path
    analyzer uses it to record the event order a run actually resolved,
    so tests can assert the resolution is deterministic (equal
    timestamps break ties FIFO via the internal sequence counter) and
    independent of heap internals.
    """

    def __init__(
        self,
        perturb: Callable[[float, Any], float] | None = None,
        observer: Callable[[str, float, Any], None] | None = None,
    ) -> None:
        self._heap: list[tuple[float, int, Any, int]] = []
        self._version: dict[Any, int] = {}
        self._counter = itertools.count()
        self._perturb = perturb
        self._observer = observer

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, key: Any) -> None:
        """Schedule (or reschedule) the event for ``key`` at ``time``.

        Any previously scheduled event for the same key becomes stale.
        """
        if time < 0:
            raise ValueError(f"negative event time {time}")
        if self._perturb is not None:
            perturbed = self._perturb(time, key)
            if perturbed < time:
                raise ValueError(
                    f"perturbation moved event for {key!r} earlier "
                    f"({perturbed} < {time}); delays only"
                )
            time = perturbed
        version = self._version.get(key, 0) + 1
        self._version[key] = version
        heapq.heappush(self._heap, (time, next(self._counter), key, version))
        if self._observer is not None:
            self._observer("schedule", time, key)

    def cancel(self, key: Any) -> None:
        """Invalidate any pending event for ``key``."""
        if key in self._version:
            self._version[key] += 1
            if self._observer is not None:
                self._observer("cancel", 0.0, key)

    def pop(self) -> tuple[float, Any] | None:
        """Earliest live event as ``(time, key)``, or None when drained."""
        while self._heap:
            time, _seq, key, version = heapq.heappop(self._heap)
            if self._version.get(key) == version:
                if self._observer is not None:
                    self._observer("pop", time, key)
                return time, key
        return None
