"""Fault injection for the simulated runtime (chaos engineering layer).

The paper's work-stealing scheduler (Sec III-F) assumes every rank
survives and every one-sided GA op succeeds -- the assumptions that break
first at scale.  This module makes failure a *declarative, seeded input*
of a simulated run:

* :class:`FaultPlan` -- what goes wrong: per-rank straggler slowdowns,
  transient one-sided op failures (retried with exponential backoff,
  charged to the virtual clock on the ``retry`` flight channel), delayed
  messages, and hard rank death at a virtual time;
* :class:`FaultState` -- the activated plan: one seeded
  :class:`numpy.random.Generator` drives every draw (op failures, ack
  loss, delays, victim tie-breaks), so a chaos run is reproducible from
  its seed alone;
* :func:`random_plan` -- a seeded random plan generator used by the
  ``repro chaos`` CLI and the chaos benchmark.

Consumers: :class:`~repro.runtime.network.CommStats` charges retries and
delays, :class:`~repro.runtime.ga.GlobalArray` models ack-lost
accumulates (exactly-once via tags/epochs), the
:class:`~repro.runtime.event.EventQueue` perturbs scheduler events, and
:func:`~repro.fock.stealing.run_work_stealing` executes rank deaths and
task recovery.  See ``docs/ROBUSTNESS.md`` for the fault taxonomy and
the recovery protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


class FaultError(RuntimeError):
    """A fault the runtime could not absorb (e.g. retries exhausted)."""


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of everything that goes wrong in a run.

    All randomness derives from ``seed``; activating the same plan twice
    yields identical failure sequences (given the same execution).

    Parameters
    ----------
    seed:
        Seed of the single :class:`numpy.random.Generator` behind every
        draw the plan makes.
    slowdown:
        Per-rank compute slowdown factors (straggler model): rank ``p``
        executes tasks ``slowdown[p]`` times slower.  Factors must be
        ``>= 1``.
    deaths:
        ``rank -> virtual time`` of hard, permanent rank death.  A dead
        rank stops executing, its queued *and* already-executed-but-
        unflushed tasks re-enter the pool, and it never flushes.
    op_fail_rate:
        Per-attempt probability that a remote one-sided op transiently
        fails.  Failed attempts are retried with exponential backoff;
        each retry re-sends the payload (counted on the ``retry``
        channel) and waits ``backoff_base * backoff_factor**k``.
    max_retries:
        Give up (raise :class:`FaultError`) after this many consecutive
        failures of one op -- the fault is no longer transient.
    ack_loss_rate:
        Fraction of failed put/acc attempts where the *mutation applied*
        but the acknowledgement was lost.  A blind retry of a non-
        idempotent ``GA_Acc`` would then double-apply -- unless the
        target deduplicates by tag (see :meth:`GlobalArray.acc`).
    delay_rate / delay_seconds:
        With probability ``delay_rate``, an op (or a scheduler event) is
        delayed by ``uniform(0, delay_seconds)`` of virtual time.
    """

    seed: int = 0
    slowdown: dict[int, float] = field(default_factory=dict)
    deaths: dict[int, float] = field(default_factory=dict)
    op_fail_rate: float = 0.0
    max_retries: int = 16
    backoff_base: float = 20e-6
    backoff_factor: float = 2.0
    ack_loss_rate: float = 0.5
    delay_rate: float = 0.0
    delay_seconds: float = 100e-6

    def __post_init__(self) -> None:
        if not 0.0 <= self.op_fail_rate < 1.0:
            raise ValueError(f"op_fail_rate must be in [0, 1), got {self.op_fail_rate}")
        if not 0.0 <= self.ack_loss_rate <= 1.0:
            raise ValueError(f"ack_loss_rate must be in [0, 1], got {self.ack_loss_rate}")
        if not 0.0 <= self.delay_rate <= 1.0:
            raise ValueError(f"delay_rate must be in [0, 1], got {self.delay_rate}")
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.backoff_base < 0 or self.delay_seconds < 0:
            raise ValueError("backoff_base and delay_seconds must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")
        for rank, f in self.slowdown.items():
            if f < 1.0:
                raise ValueError(f"slowdown[{rank}] must be >= 1, got {f}")
        for rank, t in self.deaths.items():
            if t < 0:
                raise ValueError(f"deaths[{rank}] must be a time >= 0, got {t}")

    @property
    def has_faults(self) -> bool:
        return bool(
            self.slowdown
            or self.deaths
            or self.op_fail_rate
            or self.delay_rate
        )

    def activate(self, nproc: int) -> "FaultState":
        """Instantiate the plan for an ``nproc``-rank run."""
        return FaultState(self, nproc)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.deaths:
            parts.append(
                "deaths=" + ",".join(f"r{p}@{t:.3g}s" for p, t in sorted(self.deaths.items()))
            )
        if self.slowdown:
            parts.append(
                "slow=" + ",".join(f"r{p}x{f:g}" for p, f in sorted(self.slowdown.items()))
            )
        if self.op_fail_rate:
            parts.append(f"op_fail={self.op_fail_rate:g}")
        if self.delay_rate:
            parts.append(f"delay={self.delay_rate:g}x{self.delay_seconds:g}s")
        return " ".join(parts)


class FaultState:
    """An activated :class:`FaultPlan`: the rng plus recovery counters.

    One instance per simulated run.  Every random decision -- op
    failures, ack loss, message delays, steal tie-breaks -- consumes the
    same seeded generator, so a run is a pure function of
    ``(inputs, plan)``.
    """

    def __init__(self, plan: FaultPlan, nproc: int):
        if nproc < 1:
            raise ValueError(f"need at least one rank, got {nproc}")
        live = nproc - sum(1 for p in plan.deaths if 0 <= p < nproc)
        if live < 1:
            raise ValueError("a FaultPlan must leave at least one rank alive")
        self.plan = plan
        self.nproc = nproc
        self.rng = np.random.default_rng(plan.seed)
        #: transient-failure retries charged, per rank
        self.retries = np.zeros(nproc, dtype=np.int64)
        #: ack-lost (applied-but-unacknowledged) accumulate attempts
        self.acks_lost = np.zeros(nproc, dtype=np.int64)
        #: injected message-delay seconds, per rank
        self.delay_time = np.zeros(nproc)

    # -- per-fault draws (all seeded) ----------------------------------------

    def compute_factor(self, rank: int) -> float:
        """Straggler slowdown multiplier for ``rank`` (1.0 = healthy)."""
        return float(self.plan.slowdown.get(rank, 1.0))

    def death_time(self, rank: int) -> float | None:
        """Virtual time at which ``rank`` dies, or None."""
        t = self.plan.deaths.get(rank)
        return float(t) if t is not None else None

    def draw_failures(self, rank: int) -> int:
        """Consecutive transient failures of one op before it succeeds.

        Raises :class:`FaultError` once ``max_retries`` attempts in a
        row have failed -- the op is treated as permanently broken.
        """
        rate = self.plan.op_fail_rate
        if rate <= 0.0:
            return 0
        n = 0
        while self.rng.random() < rate:
            n += 1
            if n >= self.plan.max_retries:
                raise FaultError(
                    f"rank {rank}: one-sided op failed {n} consecutive "
                    f"times (op_fail_rate={rate}); retries exhausted"
                )
        return n

    def draw_ack_lost(self, rank: int, nfailures: int) -> int:
        """How many of ``nfailures`` failed attempts applied their mutation."""
        if nfailures <= 0 or self.plan.ack_loss_rate <= 0.0:
            return 0
        lost = int(self.rng.binomial(nfailures, self.plan.ack_loss_rate))
        self.acks_lost[rank] += lost
        return lost

    def draw_delay(self, rank: int) -> float:
        """Injected delivery delay (seconds) for one op; usually 0."""
        if self.plan.delay_rate <= 0.0:
            return 0.0
        if self.rng.random() >= self.plan.delay_rate:
            return 0.0
        d = float(self.plan.delay_seconds * self.rng.random())
        self.delay_time[rank] += d
        return d

    def backoff(self, attempt: int) -> float:
        """Exponential backoff wait before retry ``attempt`` (0-based)."""
        return float(self.plan.backoff_base * self.plan.backoff_factor**attempt)

    def perturb_event(self, time: float, key) -> float:
        """Delayed-message jitter for scheduler events.

        Only plain rank-completion events (integer keys) are perturbed;
        control events (death markers etc.) keep exact times.
        """
        if not isinstance(key, (int, np.integer)):
            return time
        if self.plan.delay_rate <= 0.0:
            return time
        if self.rng.random() >= self.plan.delay_rate:
            return time
        return time + float(self.plan.delay_seconds * self.rng.random())

    # -- reporting -----------------------------------------------------------

    def overhead_summary(self) -> dict:
        """Recovery-overhead counters for reports and the chaos CLI."""
        return {
            "retries_total": int(self.retries.sum()),
            "acks_lost_total": int(self.acks_lost.sum()),
            "delay_time_total": float(self.delay_time.sum()),
            "dead_ranks": sorted(int(p) for p in self.plan.deaths),
            "plan": self.plan.describe(),
        }


@dataclass(frozen=True)
class SCFFaultPlan:
    """Declarative numerical faults for the SCF / Fock-build layer.

    The runtime :class:`FaultPlan` breaks the *machine* (rank deaths,
    lost acks); this plan breaks the *numerics*: it corrupts batched ERI
    quartet blocks and SCF iteration matrices with NaN/Inf, the failure
    mode of a buggy fast kernel or a bad FMA path on one node.  The
    convergence guard (:mod:`repro.scf.guard`) must detect and rescue
    every corruption -- that is the ``repro chaos --family scf`` gate.

    Corruption only targets the *batched* ERI path, never the reference
    per-primitive kernel, so the guard's ``reference_eri`` fallback (and
    the per-quartet rescue) genuinely repairs the build.

    Parameters
    ----------
    seed:
        Seed of the generator behind every corruption draw.
    quartet_nan_rate / quartet_inf_rate:
        Per-quartet-block probability that the batched ERI result is
        corrupted with NaN (resp. +Inf) in one random element.
    fock_nan_iterations / density_nan_iterations:
        SCF iteration numbers (1-based) at which one element of the
        freshly built Fock (resp. density) matrix is replaced by NaN.
        Each (iteration, target) fault fires exactly once, so the
        guard's in-iteration rebuild is not re-corrupted.
    max_corruptions:
        Hard cap on total injected corruptions (0 = unlimited); keeps
        high-rate plans from corrupting every block of a large build.
    """

    seed: int = 0
    quartet_nan_rate: float = 0.0
    quartet_inf_rate: float = 0.0
    fock_nan_iterations: tuple[int, ...] = ()
    density_nan_iterations: tuple[int, ...] = ()
    max_corruptions: int = 0

    def __post_init__(self) -> None:
        for name in ("quartet_nan_rate", "quartet_inf_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        for name in ("fock_nan_iterations", "density_nan_iterations"):
            for it in getattr(self, name):
                if it < 1:
                    raise ValueError(
                        f"{name} entries are 1-based iteration numbers, got {it}"
                    )
        if self.max_corruptions < 0:
            raise ValueError(
                f"max_corruptions must be >= 0, got {self.max_corruptions}"
            )

    @property
    def has_faults(self) -> bool:
        return bool(
            self.quartet_nan_rate
            or self.quartet_inf_rate
            or self.fock_nan_iterations
            or self.density_nan_iterations
        )

    def activate(self) -> "SCFFaultState":
        return SCFFaultState(self)

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.quartet_nan_rate:
            parts.append(f"quartet_nan={self.quartet_nan_rate:g}")
        if self.quartet_inf_rate:
            parts.append(f"quartet_inf={self.quartet_inf_rate:g}")
        if self.fock_nan_iterations:
            parts.append(
                "fock_nan@it=" + ",".join(str(i) for i in self.fock_nan_iterations)
            )
        if self.density_nan_iterations:
            parts.append(
                "density_nan@it="
                + ",".join(str(i) for i in self.density_nan_iterations)
            )
        if self.max_corruptions:
            parts.append(f"max={self.max_corruptions}")
        return " ".join(parts)


class SCFFaultState:
    """An activated :class:`SCFFaultPlan` with its seeded rng and counters."""

    def __init__(self, plan: SCFFaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        #: batched ERI blocks corrupted (NaN or Inf)
        self.quartets_corrupted = 0
        #: SCF matrices (Fock/density) corrupted
        self.matrices_corrupted = 0
        #: (iteration, target) matrix faults that already fired
        self._fired: set[tuple[int, str]] = set()

    def _budget_left(self) -> bool:
        cap = self.plan.max_corruptions
        total = self.quartets_corrupted + self.matrices_corrupted
        return cap == 0 or total < cap

    def corrupt_quartet(
        self, block: np.ndarray, quartet: tuple[int, int, int, int]
    ) -> np.ndarray:
        """Maybe corrupt one batched ERI block; returns the block to use.

        The draw consumes the rng whether or not corruption fires, so a
        faulted run is reproducible from the plan's seed alone.
        """
        p = self.plan
        if not (p.quartet_nan_rate or p.quartet_inf_rate):
            return block
        draw = self.rng.random()
        if draw >= p.quartet_nan_rate + p.quartet_inf_rate:
            return block
        if block.size == 0 or not self._budget_left():
            return block
        value = np.nan if draw < p.quartet_nan_rate else np.inf
        flat = np.array(block, dtype=float).reshape(-1)
        flat[int(self.rng.integers(flat.size))] = value
        self.quartets_corrupted += 1
        return flat.reshape(block.shape)

    def corrupt_matrix(
        self, a: np.ndarray, iteration: int, which: str
    ) -> np.ndarray:
        """Maybe NaN one element of an SCF matrix at ``iteration``.

        Each (iteration, which) fault fires at most once, so the
        guard's same-iteration rebuild sees a clean matrix.
        """
        targets = (
            self.plan.fock_nan_iterations
            if which == "fock"
            else self.plan.density_nan_iterations
        )
        key = (int(iteration), which)
        if iteration not in targets or key in self._fired:
            return a
        if a.size == 0 or not self._budget_left():
            return a
        self._fired.add(key)
        out = np.array(a, dtype=float)
        flat = out.reshape(-1)
        flat[int(self.rng.integers(flat.size))] = np.nan
        self.matrices_corrupted += 1
        return out

    def summary(self) -> dict:
        """Corruption counters for reports and the chaos CLI."""
        return {
            "quartets_corrupted": int(self.quartets_corrupted),
            "matrices_corrupted": int(self.matrices_corrupted),
            "plan": self.plan.describe(),
        }


def random_scf_plan(seed: int, quartet_nan_rate: float = 0.02) -> SCFFaultPlan:
    """Seeded random :class:`SCFFaultPlan` for ``repro chaos --family scf``.

    Splits the corruption rate between NaN and Inf and NaNs the Fock
    matrix on one early iteration; the same seed always yields the same
    plan.
    """
    rng = np.random.default_rng(seed)
    return SCFFaultPlan(
        seed=seed,
        quartet_nan_rate=quartet_nan_rate / 2,
        quartet_inf_rate=quartet_nan_rate / 2,
        fock_nan_iterations=(int(rng.integers(2, 5)),),
        max_corruptions=64,
    )


def random_plan(
    seed: int,
    nproc: int,
    horizon: float,
    ndeaths: int = 1,
    nstragglers: int = 1,
    slow_factor: float = 3.0,
    op_fail_rate: float = 0.05,
    delay_rate: float = 0.05,
    delay_seconds: float = 100e-6,
) -> FaultPlan:
    """Seeded random :class:`FaultPlan` for an ``nproc``-rank run.

    ``horizon`` is the fault-free makespan: deaths are placed uniformly
    in ``[0.1, 0.7] * horizon`` so they land mid-execution.  The same
    ``(seed, nproc, horizon, ...)`` always yields the same plan -- the
    contract behind ``repro chaos --seed``.
    """
    if ndeaths >= nproc:
        raise ValueError(f"cannot kill {ndeaths} of {nproc} ranks (need a survivor)")
    rng = np.random.default_rng(seed)
    victims = rng.choice(nproc, size=ndeaths, replace=False) if ndeaths else []
    deaths = {
        int(p): float(horizon * rng.uniform(0.1, 0.7)) for p in victims
    }
    alive = [p for p in range(nproc) if p not in deaths]
    nstrag = min(nstragglers, len(alive))
    stragglers = rng.choice(alive, size=nstrag, replace=False) if nstrag else []
    slowdown = {
        int(p): float(rng.uniform(1.5, max(slow_factor, 1.5))) for p in stragglers
    }
    return FaultPlan(
        seed=seed,
        slowdown=slowdown,
        deaths=deaths,
        op_fail_rate=op_fail_rate,
        delay_rate=delay_rate,
        delay_seconds=delay_seconds,
    )
