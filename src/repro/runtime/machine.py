"""Machine model: the constants of Table I plus measured integral rates.

The simulated distributed machine is parameterized exactly by the
quantities the paper's performance model (Sec III-G) uses:

* network bandwidth ``beta`` (Lonestar: 5 GB/s InfiniBand),
* a per-message latency ``alpha`` (not modeled in the paper's equations;
  the paper notes latency "will add to the communication time"),
* the average per-ERI computation time ``t_int`` (Table V: ~4.76 us for
  GTFock/ERD on one core; NWChem's is lower thanks to primitive
  pre-screening, especially for alkanes),
* cores per node (Lonestar: 12) -- GTFock runs 1 process/node with
  OpenMP across the node's cores, NWChem runs 1 process/core.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import check_positive


@dataclass(frozen=True)
class MachineConfig:
    """Simulated cluster parameters (defaults: Lonestar, Table I)."""

    #: network bandwidth in bytes/second (Table I: 5 GB/s)
    bandwidth: float = 5.0e9
    #: per one-sided-operation latency in seconds (InfiniBand verbs plus
    #: the Global Arrays software stack)
    latency: float = 5.0e-6
    #: cores per node (Table I: 12)
    cores_per_node: int = 12
    #: average seconds per ERI, GTFock/ERD engine on one core (Table V)
    t_int_gtfock: float = 4.76e-6
    #: average seconds per ERI, NWChem engine on one core (Table V shows
    #: NWChem faster per integral due to primitive pre-screening;
    #: more pronounced for alkanes -- benchmarks override per molecule)
    t_int_nwchem: float = 4.2e-6
    #: service time of one atomic access to the centralized task queue.
    #: The NGA_Read_inc counter lives on one rank whose progress engine
    #: shares the node with computation; effective per-access service
    #: under contention is tens of microseconds, which is what makes the
    #: centralized scheduler "a bottleneck when scaling up to a large
    #: system" (Sec I / Sec II-F of the paper).
    queue_service: float = 2.5e-5
    #: fixed per-task software overhead (queue pop, bookkeeping)
    task_overhead: float = 5.0e-7
    #: bytes per matrix element (double precision)
    element_size: int = 8

    def __post_init__(self) -> None:
        # every rate/time must be strictly positive: a zero bandwidth
        # divides by zero in transfer_time, a zero t_int makes every
        # task free, and negative latencies move clocks backwards --
        # reject all of them up front with the field name in the error
        check_positive(self.bandwidth, "bandwidth (bytes/s)")
        check_positive(self.latency, "latency (s)")
        check_positive(self.t_int_gtfock, "t_int_gtfock (s/ERI)")
        check_positive(self.t_int_nwchem, "t_int_nwchem (s/ERI)")
        check_positive(self.queue_service, "queue_service (s)")
        check_positive(self.task_overhead, "task_overhead (s)")
        check_positive(self.element_size, "element_size (bytes)")
        if self.cores_per_node < 1:
            raise ValueError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )

    def transfer_time(self, nbytes: float, ncalls: int = 1) -> float:
        """alpha-beta cost of moving ``nbytes`` in ``ncalls`` messages."""
        return ncalls * self.latency + nbytes / self.bandwidth

    def with_(self, **kwargs) -> "MachineConfig":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)


#: The paper's test machine (Table I defaults).
LONESTAR = MachineConfig()
