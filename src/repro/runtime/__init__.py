"""Simulated distributed runtime: machine model, accounting, Global Arrays."""

from repro.runtime.collectives import allreduce, barrier, broadcast, reduce_scatter
from repro.runtime.event import EventQueue
from repro.runtime.faults import FaultError, FaultPlan, FaultState, random_plan
from repro.runtime.ga import GlobalArray, SharedCounter, block_bounds, grid_shape
from repro.runtime.machine import LONESTAR, MachineConfig
from repro.runtime.network import CommStats

__all__ = [
    "allreduce",
    "barrier",
    "broadcast",
    "reduce_scatter",
    "EventQueue",
    "FaultError",
    "FaultPlan",
    "FaultState",
    "random_plan",
    "GlobalArray",
    "SharedCounter",
    "block_bounds",
    "grid_shape",
    "LONESTAR",
    "MachineConfig",
    "CommStats",
]
