"""Collective-operation cost models for the simulated runtime.

Global Arrays programs still need a few collectives (barriers around the
Fock phase, allreduce for traces/convergence checks, broadcast of the
converged density).  These charge standard tree/butterfly alpha-beta
costs to every process and synchronize clocks where semantics require.
"""

from __future__ import annotations

import math


from repro.obs.flight import (
    CH_ALLREDUCE,
    CH_BARRIER,
    CH_BROADCAST,
    CH_REDUCE_SCATTER,
)
from repro.runtime.network import CommStats


def _rounds(nproc: int) -> int:
    return max(1, int(math.ceil(math.log2(max(nproc, 2)))))


def barrier(stats: CommStats) -> float:
    """Dissemination barrier: log2(p) latency rounds, then sync clocks."""
    r = _rounds(stats.nproc)
    for p in range(stats.nproc):
        stats.charge_comm(p, 0, ncalls=r, remote=stats.nproc > 1, channel=CH_BARRIER)
    return stats.barrier()


def allreduce(stats: CommStats, nbytes: float) -> float:
    """Recursive-doubling allreduce of ``nbytes`` per process.

    Each round moves the payload once; clocks synchronize at the end
    (every process holds the result).
    """
    if nbytes < 0:
        raise ValueError("nbytes must be >= 0")
    r = _rounds(stats.nproc)
    for p in range(stats.nproc):
        stats.charge_comm(
            p, nbytes * r, ncalls=r, remote=stats.nproc > 1, channel=CH_ALLREDUCE
        )
    return stats.barrier()


def broadcast(stats: CommStats, nbytes: float, root: int = 0) -> float:
    """Binomial-tree broadcast from ``root``.

    Non-root processes cannot finish before the root's data exists, so
    all clocks are raised to the completion time.
    """
    if not 0 <= root < stats.nproc:
        raise IndexError(f"root {root} out of range")
    r = _rounds(stats.nproc)
    for p in range(stats.nproc):
        ncalls = r if p == root else 1
        stats.charge_comm(
            p, nbytes, ncalls=ncalls, remote=stats.nproc > 1, channel=CH_BROADCAST
        )
    return stats.barrier()


def reduce_scatter(stats: CommStats, nbytes_total: float) -> float:
    """Pairwise-exchange reduce-scatter of a ``nbytes_total`` buffer.

    Volume per process is ~``nbytes_total * (p-1)/p``; used to model the
    final distributed-F assembly alternative to one-sided accumulates.
    """
    if nbytes_total < 0:
        raise ValueError("nbytes_total must be >= 0")
    p = stats.nproc
    share = nbytes_total * (p - 1) / max(p, 1)
    for proc in range(p):
        stats.charge_comm(
            proc, share, ncalls=max(p - 1, 1), remote=p > 1,
            channel=CH_REDUCE_SCATTER,
        )
    return stats.barrier()
