"""Real host-parallel Fock construction with multiprocessing.

The simulated runtime demonstrates the algorithm at paper scale; this
module demonstrates it *actually running in parallel* on the host: the
same static partition and task machinery, with worker processes
computing real ERIs and a final J/K reduction.  Useful both as a genuine
speedup path for small molecules and as an end-to-end sanity check that
the task decomposition parallelizes cleanly.

Workers inherit the engine through ``fork`` (no per-task pickling); each
worker accumulates a private J/K pair over its task list, and partial
results are summed in the parent.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np

from repro.fock.partition import StaticPartition
from repro.fock.screening_map import ScreeningMap
from repro.fock.tasks import enumerate_task_quartets
from repro.integrals.engine import ERIEngine
from repro.obs import get_tracer
from repro.scf.fock import orbit_images

_WORKER_STATE: dict = {}


def _init_worker(engine: ERIEngine, screen: ScreeningMap, density: np.ndarray) -> None:
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["screen"] = screen
    _WORKER_STATE["density"] = density


def _run_tasks(tasks: list[tuple[int, int]]) -> tuple[np.ndarray, np.ndarray]:
    engine: ERIEngine = _WORKER_STATE["engine"]
    screen: ScreeningMap = _WORKER_STATE["screen"]
    density: np.ndarray = _WORKER_STATE["density"]
    basis = engine.basis
    n = basis.nbf
    j = np.zeros((n, n))
    k = np.zeros((n, n))
    slices = [basis.shell_slice(s) for s in range(basis.nshells)]
    for m, nn in tasks:
        for (mm, pp, nq, qq) in enumerate_task_quartets(screen, m, nn):
            block = engine.quartet(mm, pp, nq, qq)
            for (a, b, c, d), blk in orbit_images((mm, pp, nq, qq), block):
                sa, sb, sc, sd = slices[a], slices[b], slices[c], slices[d]
                j[sa, sb] += np.einsum("abcd,cd->ab", blk, density[sc, sd])
                k[sa, sc] += np.einsum("abcd,bd->ac", blk, density[sb, sd])
    return j, k


def parallel_build_jk(
    engine: ERIEngine,
    density: np.ndarray,
    tau: float = 1e-11,
    nworkers: int | None = None,
    screen: ScreeningMap | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """J and K via a pool of worker processes over shell-pair tasks.

    Parent-side phases (screening, partition, the pool map itself, and
    the J/K reduction) are wall-clock spans on the active tracer; worker
    interiors are separate processes and stay untraced.
    """
    tracer = get_tracer()
    basis = engine.basis
    with tracer.span(
        "parallel_build_jk", cat="parallel", nworkers=nworkers or 0
    ) as top:
        if screen is None:
            with tracer.span("screening", cat="parallel"):
                screen = ScreeningMap(basis, engine.schwarz(), tau)
        if nworkers is None:
            nworkers = max(1, min(os.cpu_count() or 1, 8))
        top["nworkers"] = nworkers
        with tracer.span("partition", cat="parallel"):
            part = StaticPartition.build(basis.nshells, nworkers)
            chunks = [part.task_block(p).tasks() for p in range(part.nproc)]
        top["ntasks"] = sum(len(c) for c in chunks)

        if nworkers == 1:
            with tracer.span("pool_map", cat="parallel", nworkers=1):
                _init_worker(engine, screen, density)
                j, k = _run_tasks([t for chunk in chunks for t in chunk])
            return j, k

        with tracer.span("pool_map", cat="parallel", nworkers=nworkers):
            ctx = mp.get_context("fork")
            with ctx.Pool(
                processes=nworkers,
                initializer=_init_worker,
                initargs=(engine, screen, density),
            ) as pool:
                parts = pool.map(_run_tasks, chunks)
        with tracer.span("reduce", cat="parallel"):
            n = basis.nbf
            j = np.zeros((n, n))
            k = np.zeros((n, n))
            for jp, kp in parts:
                j += jp
                k += kp
        return j, k


def parallel_fock_matrix(
    engine: ERIEngine,
    hcore: np.ndarray,
    density: np.ndarray,
    tau: float = 1e-11,
    nworkers: int | None = None,
) -> np.ndarray:
    """F = Hcore + 2J - K computed with real host parallelism."""
    j, k = parallel_build_jk(engine, density, tau, nworkers)
    return hcore + 2.0 * j - k
