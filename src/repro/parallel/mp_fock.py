"""Real host-parallel Fock construction with multiprocessing.

The simulated runtime demonstrates the algorithm at paper scale; this
module demonstrates it *actually running in parallel* on the host: the
same shell-pair task machinery, with worker processes computing real
ERIs and a final J/K reduction.  Tasks are cost-sorted (vectorized
quartet cost matrix) and dealt into more chunks than workers, consumed
via ``imap_unordered`` for dynamic balancing -- the host-pool analogue
of the paper's work-stealing over a static partition.  Useful both as a
genuine speedup path for small molecules and as an end-to-end sanity
check that the task decomposition parallelizes cleanly.

Workers inherit the engine through ``fork`` (no per-task pickling); each
worker accumulates a private J/K pair over its task list, and partial
results are summed in the parent.

Crash tolerance: every live pool is registered in a module-level set
while in use, so a process that is told to die (the service supervisor's
per-job SIGTERM, a clean worker shutdown) can call
:func:`shutdown_active_pools` from its signal handler and terminate the
child processes instead of leaking them -- the default SIGTERM
disposition would kill the parent and orphan the pool.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading

import numpy as np

from repro.fock.cost import quartet_cost_matrix
from repro.fock.screening_map import ScreeningMap
from repro.fock.tasks import enumerate_task_quartets
from repro.integrals.class_batch import jk_for_quartets
from repro.integrals.engine import ERIEngine
from repro.obs import get_tracer
from repro.scf.fock import orbit_images

_WORKER_STATE: dict = {}

#: pools currently executing a map, registered for signal-time teardown
_ACTIVE_POOLS: set = set()
_ACTIVE_POOLS_LOCK = threading.Lock()


def _register_pool(pool) -> None:
    with _ACTIVE_POOLS_LOCK:
        _ACTIVE_POOLS.add(pool)


def _unregister_pool(pool) -> None:
    with _ACTIVE_POOLS_LOCK:
        _ACTIVE_POOLS.discard(pool)


def active_pool_count() -> int:
    """Live registered pools (0 outside a ``parallel_build_jk`` call)."""
    with _ACTIVE_POOLS_LOCK:
        return len(_ACTIVE_POOLS)


def shutdown_active_pools() -> int:
    """Terminate and join every registered pool; returns how many.

    Safe to call from a signal handler: a job that is timed out with
    SIGTERM tears down its child processes instead of leaking them to
    init.  Idempotent -- terminating an already-closed pool is a no-op.
    """
    with _ACTIVE_POOLS_LOCK:
        pools = list(_ACTIVE_POOLS)
        _ACTIVE_POOLS.clear()
    for pool in pools:
        try:
            pool.terminate()
            pool.join()
        except Exception:  # pragma: no cover - best effort at shutdown
            pass
    return len(pools)


def _init_worker(engine: ERIEngine, screen: ScreeningMap, density: np.ndarray) -> None:
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["screen"] = screen
    _WORKER_STATE["density"] = density


def _run_tasks(tasks: list[tuple[int, int]]) -> tuple[np.ndarray, np.ndarray]:
    engine: ERIEngine = _WORKER_STATE["engine"]
    screen: ScreeningMap = _WORKER_STATE["screen"]
    density: np.ndarray = _WORKER_STATE["density"]
    basis = engine.basis
    quartets = [
        qt
        for m, nn in tasks
        for qt in enumerate_task_quartets(screen, m, nn)
    ]
    if (
        getattr(engine, "supports_class_batched", False)
        and getattr(engine, "scf_faults", None) is None
        and quartets
    ):
        # the worker's whole task chunk as one class-batched sweep; the
        # coincidence-pattern scatter handles the non-canonical
        # (M, P, N, Q) task tuples directly
        return jk_for_quartets(engine, density, quartets)
    n = basis.nbf
    j = np.zeros((n, n))
    k = np.zeros((n, n))
    slices = basis.shell_slices
    for (mm, pp, nq, qq) in quartets:
        block = engine.quartet(mm, pp, nq, qq)
        for (a, b, c, d), blk in orbit_images((mm, pp, nq, qq), block):
            sa, sb, sc, sd = slices[a], slices[b], slices[c], slices[d]
            j[sa, sb] += np.einsum("abcd,cd->ab", blk, density[sc, sd])
            k[sa, sc] += np.einsum("abcd,bd->ac", blk, density[sb, sd])
    return j, k


def _cost_sorted_chunks(
    screen: ScreeningMap, nchunks: int
) -> list[list[tuple[int, int]]]:
    """Shell-pair tasks dealt into ``nchunks`` cost-balanced chunks.

    Tasks are sorted by descending estimated ERI count and dealt
    round-robin, so every chunk mixes expensive and cheap tasks and no
    single chunk concentrates the hot shell pairs the way contiguous
    static blocks do.
    """
    costs = quartet_cost_matrix(screen)
    ns = screen.nshells
    tasks = [(m, n) for m in range(ns) for n in range(ns)]
    tasks.sort(key=lambda t: -costs.eris[t[0], t[1]])
    chunks: list[list[tuple[int, int]]] = [[] for _ in range(nchunks)]
    for i, task in enumerate(tasks):
        chunks[i % nchunks].append(task)
    return [c for c in chunks if c]


def parallel_build_jk(
    engine: ERIEngine,
    density: np.ndarray,
    tau: float = 1e-11,
    nworkers: int | None = None,
    screen: ScreeningMap | None = None,
    chunks_per_worker: int = 4,
) -> tuple[np.ndarray, np.ndarray]:
    """J and K via a pool of worker processes over shell-pair tasks.

    Tasks are cost-sorted and dealt into ``chunks_per_worker * nworkers``
    chunks consumed with ``imap_unordered``, so idle workers pick up
    remaining chunks dynamically instead of the pool being gated on the
    most expensive static block; partial J/K results are reduced as they
    arrive.

    Parent-side phases (screening, partition, the pool map itself, and
    the J/K reduction) are wall-clock spans on the active tracer; worker
    interiors are separate processes and stay untraced.
    """
    tracer = get_tracer()
    basis = engine.basis
    with tracer.span(
        "parallel_build_jk", cat="parallel", nworkers=nworkers or 0
    ) as top:
        if screen is None:
            with tracer.span("screening", cat="parallel"):
                screen = ScreeningMap(basis, engine.schwarz(), tau)
        if nworkers is None:
            nworkers = max(1, min(os.cpu_count() or 1, 8))
        top["nworkers"] = nworkers
        with tracer.span("partition", cat="parallel"):
            chunks = _cost_sorted_chunks(
                screen, max(1, nworkers * chunks_per_worker)
            )
        top["ntasks"] = sum(len(c) for c in chunks)

        if nworkers == 1:
            with tracer.span("pool_map", cat="parallel", nworkers=1):
                _init_worker(engine, screen, density)
                j, k = _run_tasks([t for chunk in chunks for t in chunk])
            return j, k

        n = basis.nbf
        j = np.zeros((n, n))
        k = np.zeros((n, n))
        with tracer.span("pool_map", cat="parallel", nworkers=nworkers):
            ctx = mp.get_context("fork")
            with ctx.Pool(
                processes=nworkers,
                initializer=_init_worker,
                initargs=(engine, screen, density),
            ) as pool:
                _register_pool(pool)
                try:
                    # reduce partials as they arrive, in completion order
                    for jp, kp in pool.imap_unordered(_run_tasks, chunks):
                        j += jp
                        k += kp
                finally:
                    _unregister_pool(pool)
        return j, k


def parallel_fock_matrix(
    engine: ERIEngine,
    hcore: np.ndarray,
    density: np.ndarray,
    tau: float = 1e-11,
    nworkers: int | None = None,
) -> np.ndarray:
    """F = Hcore + 2J - K computed with real host parallelism."""
    j, k = parallel_build_jk(engine, density, tau, nworkers)
    return hcore + 2.0 * j - k
