"""Real host-parallel execution paths (multiprocessing)."""

from repro.parallel.mp_fock import parallel_build_jk, parallel_fock_matrix

__all__ = ["parallel_build_jk", "parallel_fock_matrix"]
