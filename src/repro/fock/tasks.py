"""Task definitions for both Fock-build decompositions.

* **GTFock tasks** (Sec III-B): one task per shell pair ``(M,:|N,:)``,
  computing the parity-unique, screened quartets ``(MP|NQ)``.
  :func:`enumerate_task_quartets` is the numeric-mode equivalent of the
  paper's Algorithm 3 (dotask).
* **NWChem tasks** (Sec II-F, Algorithm 2): chunks of 5 atom quartets
  from a fixed global enumeration over unique atom triplets, dispensed by
  a centralized counter.  :func:`nwchem_task_list` materializes that
  enumeration; :func:`atom_quartet_shell_quartets` expands one atom
  quartet into the unique shell quartets it is responsible for.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.fock.screening_map import ScreeningMap
from repro.fock.symmetry import symmetry_check, task_computes


# ---------------------------------------------------------------------------
# GTFock shell-pair tasks
# ---------------------------------------------------------------------------


def enumerate_task_quartets(
    screen: ScreeningMap, m: int, n: int
) -> Iterator[tuple[int, int, int, int]]:
    """Quartets ``(M, P, N, Q)`` computed by task ``(M,:|N,:)`` -- Algorithm 3.

    Iterates P over Phi(M) and Q over Phi(N) (anything outside the
    significant sets cannot pass the product test), applying the parity
    uniqueness predicate and Cauchy-Schwarz screening.

    Yields quartets as ``(M, P, N, Q)``: bra pair (M, P), ket pair (N, Q);
    the ERI block to compute is ``(MP|NQ)``.
    """
    if not symmetry_check(m, n):
        return
    sigma = screen.sigma
    tau = screen.tau
    for p in screen.phi[m]:
        smp = sigma[m, p]
        if smp * screen.sigma_max <= tau:
            continue
        for q in screen.phi[n]:
            if smp * sigma[n, q] > tau and task_computes(m, n, int(p), int(q)):
                yield (m, int(p), n, int(q))


def task_quartet_count(screen: ScreeningMap, m: int, n: int) -> int:
    """Exact surviving-quartet count of one task (test/verification path)."""
    return sum(1 for _ in enumerate_task_quartets(screen, m, n))


# ---------------------------------------------------------------------------
# NWChem atom-quartet tasks
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NWChemTask:
    """One NWChem task: up to 5 consecutive atom quartets (I,J,K, L-range)."""

    i_at: int
    j_at: int
    k_at: int
    l_lo: int
    l_hi: int  # inclusive, as in Algorithm 2

    def l_range(self) -> range:
        return range(self.l_lo, self.l_hi + 1)


def atom_sigma(screen: ScreeningMap) -> np.ndarray:
    """Atom-pair screening values: max over the atoms' shell pairs."""
    basis = screen.basis
    natoms = basis.molecule.natoms
    atom_of = basis.atom_of_shell
    out = np.zeros((natoms, natoms))
    sig = screen.sigma
    # reduce shell-pair sigma to atom blocks
    order = np.argsort(atom_of, kind="stable")
    sorted_atoms = atom_of[order]
    starts = np.searchsorted(sorted_atoms, np.arange(natoms))
    bounds = np.append(starts, len(order))
    groups = [order[bounds[a] : bounds[a + 1]] for a in range(natoms)]
    for a in range(natoms):
        rows = sig[groups[a]]
        for b in range(a + 1):
            v = float(rows[:, groups[b]].max()) if groups[b].size else 0.0
            out[a, b] = out[b, a] = v
    return out


def nwchem_task_list(
    screen: ScreeningMap, chunk: int = 5
) -> list[NWChemTask]:
    """The global ordered task list of Algorithm 2.

    Tasks enumerate unique triplets (I >= J, K <= I) with significant
    (I, J), chunking the innermost L loop in strides of ``chunk``
    (NWChem's "5 atom quartets per task").  The list order *is* the
    dispatch order of the centralized scheduler.
    """
    sig_at = atom_sigma(screen)
    tau_sig = screen.tau / max(float(sig_at.max()), 1e-300)
    natoms = sig_at.shape[0]
    tasks: list[NWChemTask] = []
    for i_at in range(natoms):
        for j_at in range(i_at + 1):
            if sig_at[i_at, j_at] < tau_sig:
                continue
            for k_at in range(i_at + 1):
                l_hi = j_at if k_at == i_at else k_at
                for l_lo in range(0, l_hi + 1, chunk):
                    tasks.append(
                        NWChemTask(
                            i_at, j_at, k_at, l_lo, min(l_lo + chunk - 1, l_hi)
                        )
                    )
    return tasks


def atom_quartet_shell_quartets(
    screen: ScreeningMap,
    shells_of_atom: list[list[int]],
    i_at: int,
    j_at: int,
    k_at: int,
    l_at: int,
) -> Iterator[tuple[int, int, int, int]]:
    """Unique screened shell quartets owned by atom quartet (IJ|KL).

    The enumerated atom quartets (from :func:`nwchem_task_list`'s loop
    structure) visit exactly one instance of every atom-level
    permutational orbit.  A shell quartet instance (MN|PQ) with M in I,
    N in J, P in K, Q in L is owned by this atom quartet iff it is the
    lexicographically smallest instance of its *shell* orbit among those
    whose atom tuple equals (I, J, K, L) position-wise.  Every shell
    orbit has at least one instance over the enumerated atom
    representative, so the union over atom quartets covers each shell
    orbit exactly once (property-tested against the canonical
    enumeration).

    Yields ``(M, N, P, Q)`` meaning the ERI block (MN|PQ): bra (M, N),
    ket (P, Q).
    """
    from repro.fock.symmetry import orbit_tuples

    sigma = screen.sigma
    tau = screen.tau
    atom_of = screen.basis.atom_of_shell
    target = (i_at, j_at, k_at, l_at)
    for m in shells_of_atom[i_at]:
        for n in shells_of_atom[j_at]:
            smn = sigma[m, n]
            if smn * screen.sigma_max <= tau:
                continue
            for p in shells_of_atom[k_at]:
                for q in shells_of_atom[l_at]:
                    if smn * sigma[p, q] <= tau:
                        continue
                    instances = [
                        t
                        for t in orbit_tuples(m, n, p, q)
                        if (
                            atom_of[t[0]],
                            atom_of[t[1]],
                            atom_of[t[2]],
                            atom_of[t[3]],
                        )
                        == target
                    ]
                    if (m, n, p, q) == min(instances):
                        yield (m, n, p, q)
