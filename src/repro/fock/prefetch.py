"""Prefetch footprints: which D/F blocks a task block touches (Sec III-D).

A task ``(M,:|N,:)`` reads/updates the shell-pair index sets
``(M, Phi(M)), (N, Phi(N)), (Phi(M), Phi(N))``.  For a whole task block
the union footprint is::

    rows:   { (M, P) : M in R, P in Phi(M) }
    cols:   { (N, Q) : N in C, Q in Phi(N) }
    cross:  PhiUnion(R) x PhiUnion(C)

Shell reordering makes consecutive Phi sets overlap, so the cross term is
far smaller than (ntasks x per-task footprint) -- the effect Figure 1 of
the paper visualizes (a 50x50 task block needs ~80x one task's data, not
2500x).

Everything here is exact set arithmetic on the significance matrix,
vectorized with boolean masks; volumes are in matrix *elements* (multiply
by 8 for bytes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fock.partition import TaskBlock
from repro.fock.screening_map import ScreeningMap


@dataclass
class Footprint:
    """The D (or F) footprint of a task block, as shell-pair structure.

    ``row_pairs``/``col_pairs`` are boolean (nshells, nshells) masks of
    touched directed shell pairs; ``elements`` is the number of matrix
    elements in the union of all touched blocks.
    """

    #: touched (M, P) pairs: rows of the block x their Phi sets
    row_pairs: np.ndarray
    #: touched (N, Q) pairs
    col_pairs: np.ndarray
    #: Phi-union masks for the cross term
    phi_rows: np.ndarray
    phi_cols: np.ndarray
    #: distinct matrix elements in the union footprint
    elements: int
    #: elements counted per-region without cross-region dedup (v1+v2 view)
    elements_rows: int
    elements_cols: int
    elements_cross: int

    @property
    def bytes(self) -> int:
        return self.elements * 8


def block_footprint(screen: ScreeningMap, block: TaskBlock) -> Footprint:
    """Exact union D-footprint of a task block."""
    sig = screen.significant
    sizes = screen.basis.shell_sizes().astype(np.int64)
    rows = block.rows()
    cols = block.cols()

    row_pairs = np.zeros_like(sig)
    row_pairs[rows] = sig[rows]
    col_pairs = np.zeros_like(sig)
    col_pairs[cols] = sig[cols]
    phi_rows = screen.phi_union(rows)
    phi_cols = screen.phi_union(cols)

    cross = np.outer(phi_rows, phi_cols)
    union = row_pairs | col_pairs | cross
    w = sizes[:, None] * sizes[None, :]
    return Footprint(
        row_pairs=row_pairs,
        col_pairs=col_pairs,
        phi_rows=phi_rows,
        phi_cols=phi_cols,
        elements=int(w[union].sum()),
        elements_rows=int(w[row_pairs].sum()),
        elements_cols=int(w[col_pairs].sum()),
        elements_cross=int(sizes[phi_rows].sum()) * int(sizes[phi_cols].sum()),
    )


def task_footprint_elements(screen: ScreeningMap, m: int, n: int) -> int:
    """D-footprint (elements) of a single task (M,:|N,:) -- Figure 1(a)."""
    return block_footprint(screen, TaskBlock(m, m + 1, n, n + 1)).elements


def footprint_element_mask(fp: Footprint, basis) -> np.ndarray:
    """Symmetrized element-level (nbf, nbf) mask of a footprint.

    Expands the shell-pair union (rows | cols | cross) to basis-function
    granularity and symmetrizes it, matching how the numeric build's F
    contributions land on both (i, j) and (j, i).  Used to attribute a
    thief's F flush to its own static footprint vs stolen work.
    """
    sizes = basis.shell_sizes().astype(np.int64)
    union = fp.row_pairs | fp.col_pairs | np.outer(fp.phi_rows, fp.phi_cols)
    m = np.repeat(np.repeat(union, sizes, axis=0), sizes, axis=1)
    return m | m.T


def footprint_bounding_boxes(fp: Footprint) -> list[tuple[int, int, int, int]]:
    """Bounding rectangles (shell index space) of the three fetch regions.

    Used to estimate GA call counts: with reordering, each region is
    nearly contiguous, so GTFock issues one strided GA access per region
    per owner process it overlaps.
    """
    boxes = []
    for mask2d in (fp.row_pairs, fp.col_pairs):
        rows, cols = np.nonzero(mask2d)
        if rows.size:
            boxes.append(
                (int(rows.min()), int(rows.max()) + 1, int(cols.min()), int(cols.max()) + 1)
            )
    pr = np.flatnonzero(fp.phi_rows)
    pc = np.flatnonzero(fp.phi_cols)
    if pr.size and pc.size:
        boxes.append((int(pr.min()), int(pr.max()) + 1, int(pc.min()), int(pc.max()) + 1))
    return boxes


def ga_calls_for_footprint(
    fp: Footprint, row_bounds: np.ndarray, col_bounds: np.ndarray
) -> int:
    """Number of one-sided GA calls to fetch a footprint.

    One call per (fetch-region bounding box, owner process) intersection,
    mirroring strided GA gets against a 2-D blocked array with
    shell-block boundaries ``row_bounds``/``col_bounds`` (shell indices).
    """
    calls = 0
    for r0, r1, c0, c1 in footprint_bounding_boxes(fp):
        gi0 = int(np.searchsorted(row_bounds, r0, side="right")) - 1
        gi1 = int(np.searchsorted(row_bounds, r1 - 1, side="right")) - 1
        gj0 = int(np.searchsorted(col_bounds, c0, side="right")) - 1
        gj1 = int(np.searchsorted(col_bounds, c1 - 1, side="right")) - 1
        calls += (gi1 - gi0 + 1) * (gj1 - gj0 + 1)
    return calls
