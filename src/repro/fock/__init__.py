"""The paper's core contribution: scalable parallel Fock matrix construction.

Public surface:

* numeric distributed builds -- :func:`gtfock_build` (the paper's
  Algorithm 4) and :func:`nwchem_build` (the Algorithm 2 baseline), both
  producing Fock matrices equal to the sequential reference;
* timing-level simulation -- :func:`simulate_gtfock` /
  :func:`simulate_nwchem` for paper-scale molecules and core counts;
* the building blocks: screening maps, parity symmetry checks, spatial
  shell reordering, static 2-D partitioning, prefetch footprints, task
  cost matrices, and the two schedulers.
"""

from repro.fock.ablation import (
    AblationRow,
    granularity_ablation,
    reordering_ablation,
    stealing_ablation,
)
from repro.fock.centralized import CentralizedOutcome, run_centralized
from repro.fock.chaos import ChaosResult, run_chaos
from repro.fock.cost import TaskCosts, parity_allowed, quartet_cost_matrix
from repro.fock.gtfock import GTFockBuildResult, PrefetchMiss, gtfock_build
from repro.fock.nwchem import NWChemBuildResult, nwchem_build
from repro.fock.partition import StaticPartition, TaskBlock
from repro.fock.prefetch import (
    Footprint,
    block_footprint,
    footprint_bounding_boxes,
    ga_calls_for_footprint,
    task_footprint_elements,
)
from repro.fock.reorder import bandwidth_of, cell_reordering, reorder_basis
from repro.fock.screening_map import ScreeningMap
from repro.fock.simulate import FockSimResult, simulate_gtfock, simulate_nwchem
from repro.fock.stealing import (
    RecoveryRecord,
    StealingOutcome,
    run_work_stealing,
    victim_scan_order,
)
from repro.fock.symmetry import (
    canonical_instance,
    is_canonical_instance,
    orbit_tuples,
    symmetry_check,
    task_computes,
)
from repro.fock.timeline import (
    Span,
    Timeline,
    timeline_from_tracer,
    traced_work_stealing,
)
from repro.fock.tasks import (
    NWChemTask,
    atom_quartet_shell_quartets,
    atom_sigma,
    enumerate_task_quartets,
    nwchem_task_list,
)

__all__ = [
    "AblationRow",
    "granularity_ablation",
    "reordering_ablation",
    "stealing_ablation",
    "CentralizedOutcome",
    "run_centralized",
    "ChaosResult",
    "run_chaos",
    "TaskCosts",
    "parity_allowed",
    "quartet_cost_matrix",
    "GTFockBuildResult",
    "PrefetchMiss",
    "gtfock_build",
    "NWChemBuildResult",
    "nwchem_build",
    "StaticPartition",
    "TaskBlock",
    "Footprint",
    "block_footprint",
    "footprint_bounding_boxes",
    "ga_calls_for_footprint",
    "task_footprint_elements",
    "bandwidth_of",
    "cell_reordering",
    "reorder_basis",
    "ScreeningMap",
    "FockSimResult",
    "simulate_gtfock",
    "simulate_nwchem",
    "RecoveryRecord",
    "StealingOutcome",
    "run_work_stealing",
    "victim_scan_order",
    "canonical_instance",
    "is_canonical_instance",
    "orbit_tuples",
    "symmetry_check",
    "task_computes",
    "Span",
    "Timeline",
    "timeline_from_tracer",
    "traced_work_stealing",
    "NWChemTask",
    "atom_quartet_shell_quartets",
    "atom_sigma",
    "enumerate_task_quartets",
    "nwchem_task_list",
]
