"""Unique-quartet enforcement for shell-pair tasks (Sec III-B/III-C).

Task ``(M,: | N,:)`` nominally touches every quartet ``(MP|NQ)``; the
8-fold permutational symmetry of Eq (4) means only one eighth must be
computed.  The paper enforces uniqueness with a parity *SymmetryCheck*
on index pairs instead of triangular loop bounds, so that the task grid
stays a full ``nshells x nshells`` rectangle that can be block-partitioned.

:func:`symmetry_check` is the paper's parity tournament.  The full
predicate :func:`task_computes` adds the tie-breaks needed for quartets
with coincident indices (diagonal tasks computing both ``(MP|MQ)`` and
its bra/ket mirror ``(MQ|MP)``); the test suite verifies by brute force
that every permutational orbit is computed by *exactly one*
(task, loop-point) across the whole task grid.

:func:`canonical_instance` gives the equivalent orbit-representative view
used by atom-quartet (NWChem-style) task schemes.
"""

from __future__ import annotations


def symmetry_check(m: int, n: int) -> bool:
    """The paper's parity SymmetryCheck, extended with C(x, x) = True.

    For ``m != n`` exactly one of ``(m, n)`` / ``(n, m)`` passes:
    the larger-first orientation iff the index sum is even.
    """
    if m == n:
        return True
    if m > n:
        return (m + n) % 2 == 0
    return (m + n) % 2 == 1


def task_computes(m: int, n: int, p: int, q: int) -> bool:
    """Does task ``(M,:|N,:)`` compute quartet ``(MP|NQ)``?

    True iff SymmetryCheck passes on (M,N), (M,P) and (N,Q) -- Algorithm 3
    -- with one extra tie-break: in diagonal tasks (M == N), the bra/ket
    mirror loop point (Q, P) would satisfy the same checks, so only
    ``P <= Q`` is kept.
    """
    if not (symmetry_check(m, n) and symmetry_check(m, p) and symmetry_check(n, q)):
        return False
    if m == n and p > q:
        return False
    return True


def orbit_tuples(
    m: int, p: int, n: int, q: int
) -> set[tuple[int, int, int, int]]:
    """All distinct (bra1, bra2, ket1, ket2) instances of a quartet's orbit.

    The quartet is written ``(MP|NQ)``: bra pair (m, p), ket pair (n, q).
    """
    out = set()
    for b1, b2 in ((m, p), (p, m)):
        for k1, k2 in ((n, q), (q, n)):
            out.add((b1, b2, k1, k2))
            out.add((k1, k2, b1, b2))
    return out


def canonical_instance(m: int, p: int, n: int, q: int) -> tuple[int, int, int, int]:
    """Lexicographically smallest orbit instance (bra1, bra2, ket1, ket2).

    A quartet-orbit representative rule independent of the parity trick;
    used by the NWChem-style atom-quartet decomposition and by tests.
    """
    return min(orbit_tuples(m, p, n, q))


def is_canonical_instance(m: int, p: int, n: int, q: int) -> bool:
    """True iff (m, p, n, q) is its orbit's lexicographic representative."""
    return (m, p, n, q) == canonical_instance(m, p, n, q)
