"""Centralized dynamic scheduler simulation (NWChem's model, Sec II-F).

All processes pull task ids from one shared atomic counter
(``NGA_Read_inc``).  Every access serializes at the counter's owner, so
with large p the scheduler itself becomes a bottleneck -- one of the
three overhead sources the paper identifies (Sec IV-C: 112k counter
accesses for C100H202 at 3888 cores).

Event-driven: the process with the smallest virtual clock acts next;
the counter's queueing delay comes from
:class:`repro.runtime.ga.SharedCounter`.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.runtime.ga import SharedCounter
from repro.runtime.network import CommStats


@dataclass
class CentralizedOutcome:
    finish_time: np.ndarray
    executed_cost: np.ndarray
    executed_tasks: np.ndarray
    counter_accesses: int

    @property
    def makespan(self) -> float:
        return float(self.finish_time.max())

    def load_balance_ratio(self) -> float:
        avg = float(self.finish_time.mean())
        return float(self.finish_time.max()) / avg if avg > 0 else 1.0


def run_centralized(
    tasks: list[Any],
    nproc: int,
    stats: CommStats,
    cost_of: Callable[[Any], float],
    comm_of: Callable[[int, Any], None] | None = None,
    on_task: Callable[[int, Any], None] | None = None,
) -> CentralizedOutcome:
    """Execute a global ordered task list through a centralized counter.

    Parameters
    ----------
    tasks:
        The global dispatch-ordered task list (Algorithm 2's id space).
    nproc:
        Number of pulling processes.
    stats:
        Accounting; clocks may be pre-charged and are advanced in place.
    cost_of:
        Compute cost (seconds) of one task on one process.
    comm_of:
        Per-task communication hook: ``comm_of(proc, task)`` should charge
        the task's D fetches / F updates to ``stats`` (and, in numeric
        mode, actually move the data).
    on_task:
        Numeric-mode execution hook.
    """
    counter = SharedCounter(stats)
    executed_cost = np.zeros(nproc)
    executed_tasks = np.zeros(nproc, dtype=np.int64)
    ntasks = len(tasks)

    # process with smallest clock pulls next; heap of (clock, proc)
    heap = [(float(stats.clock[p]), p) for p in range(nproc)]
    heapq.heapify(heap)
    finish = np.array([float(stats.clock[p]) for p in range(nproc)])
    while heap:
        _, p = heapq.heappop(heap)
        task_id = counter.read_inc(p)
        if task_id >= ntasks:
            finish[p] = float(stats.clock[p])
            continue  # this process is done; do not re-push
        task = tasks[task_id]
        if comm_of is not None:
            comm_of(p, task)
        c = cost_of(task)
        stats.charge_compute(p, c)
        executed_cost[p] += c
        executed_tasks[p] += 1
        if on_task is not None:
            on_task(p, task)
        heapq.heappush(heap, (float(stats.clock[p]), p))

    return CentralizedOutcome(
        finish_time=finish,
        executed_cost=executed_cost,
        executed_tasks=executed_tasks,
        counter_accesses=counter.accesses,
    )
