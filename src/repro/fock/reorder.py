"""Spatial-cell shell reordering (Sec III-D).

Shell indexing is arbitrary; the paper renumbers shells so that spatially
close shells get close indices.  Consequences:

* Phi(M) becomes a near-contiguous index range, so the D/F regions a task
  touches are close to contiguous blocks (fewer, larger GA transfers);
* consecutive shells have strongly overlapping Phi sets, shrinking the
  union footprint of a whole task block (Figure 1: a 50x50 task block
  needs only ~80x the data of a single task instead of 2500x).

The scheme: enclose the molecule in a cube, split it into small cubical
cells, order cells by a "natural ordering" (lexicographic sweep), and
number shells cell by cell.  A Hilbert-curve cell ordering is also
provided as the paper's "identification of improved reordering schemes"
future-work item.
"""

from __future__ import annotations

import numpy as np

from repro.chem.basis.basisset import BasisSet


def cell_reordering(
    basis: BasisSet, cell_size: float = 5.0, ordering: str = "natural"
) -> np.ndarray:
    """Permutation of shell indices grouping spatially close shells.

    Parameters
    ----------
    basis:
        Basis whose shells to reorder.
    cell_size:
        Cubical cell edge length in bohr.
    ordering:
        ``"natural"`` -- lexicographic (x, y, z) cell sweep, as in the
        paper; ``"hilbert"`` -- Hilbert space-filling curve over cells
        (future-work extension); ``"none"`` -- identity.

    Returns
    -------
    order:
        ``order[new_index] = old_index``; apply with
        :meth:`BasisSet.permuted`.
    """
    ns = basis.nshells
    if ordering == "none":
        return np.arange(ns)
    if cell_size <= 0:
        raise ValueError(f"cell_size must be positive, got {cell_size}")
    centers = basis.centers
    lo = centers.min(axis=0)
    cells = np.floor((centers - lo) / cell_size).astype(np.int64)
    ncell = cells.max(axis=0) + 1
    if ordering == "natural":
        keys = (cells[:, 0] * ncell[1] + cells[:, 1]) * ncell[2] + cells[:, 2]
    elif ordering == "hilbert":
        order_bits = max(1, int(np.ceil(np.log2(ncell.max() + 1))))
        keys = np.array(
            [_hilbert_d(order_bits, x, y, z) for x, y, z in cells], dtype=np.int64
        )
    else:
        raise ValueError(f"unknown ordering {ordering!r}")
    # stable sort keeps within-cell order deterministic ("numbering within
    # a cell being arbitrary", Sec III-D)
    return np.argsort(keys, kind="stable")


def reorder_basis(
    basis: BasisSet, cell_size: float = 5.0, ordering: str = "natural"
) -> BasisSet:
    """Convenience: build the reordered BasisSet directly."""
    return basis.permuted(cell_reordering(basis, cell_size, ordering))


def bandwidth_of(significant: np.ndarray) -> float:
    """Mean index bandwidth of the significant-pair matrix.

    The quantity the reordering minimizes: the average of
    ``max(Phi(M)) - min(Phi(M))`` over shells.  Smaller bandwidth means
    task footprints closer to contiguous blocks.
    """
    ns = significant.shape[0]
    spans = []
    for m in range(ns):
        idx = np.flatnonzero(significant[m])
        if idx.size:
            spans.append(int(idx[-1] - idx[0]))
    return float(np.mean(spans)) if spans else 0.0


def _hilbert_d(order: int, x: int, y: int, z: int) -> int:
    """Distance along a 3-D Hilbert curve of the given order (bit depth).

    Compact implementation of the Skilling transform (transpose form).
    """
    X = [x, y, z]
    n = 3
    m = 1 << (order - 1)
    # inverse undo of the Gray-code transform
    q = m
    while q > 1:
        p = q - 1
        for i in range(n):
            if X[i] & q:
                X[0] ^= p
            else:
                t = (X[0] ^ X[i]) & p
                X[0] ^= t
                X[i] ^= t
        q >>= 1
    for i in range(1, n):
        X[i] ^= X[i - 1]
    t = 0
    q = m
    while q > 1:
        if X[n - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(n):
        X[i] ^= t
    # interleave bits (transpose -> scalar)
    d = 0
    for bit in range(order - 1, -1, -1):
        for i in range(n):
            d = (d << 1) | ((X[i] >> bit) & 1)
    return d
