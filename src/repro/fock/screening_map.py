"""Significant sets and screening structure (Sec II-D and III-B).

Wraps a shell-pair Schwarz matrix with the derived objects the parallel
algorithm is built on:

* the *significant set* ``Phi(M) = { P : sigma(M,P) >= tau / m }`` where
  ``m = max sigma`` (the paper's definition of pair significance),
* quartet survival ``sigma(M,P) * sigma(N,Q) > tau``,
* summary statistics (B = average |Phi|, q = average overlap of
  consecutive Phi sets) feeding the performance model of Sec III-G.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.util.validation import check_square, check_symmetric


@dataclass
class ScreeningMap:
    """Screening structure over a basis's shell pairs.

    Parameters
    ----------
    basis:
        The shell list (provides sizes and centers).
    sigma:
        Shell-pair Schwarz values, shape (nshells, nshells), symmetric.
    tau:
        Drop tolerance for quartets (the paper uses 1e-10).
    """

    basis: BasisSet
    sigma: np.ndarray
    tau: float

    def __post_init__(self) -> None:
        check_square(self.sigma, "sigma")
        check_symmetric(self.sigma, "sigma", tol=1e-10)
        if self.sigma.shape[0] != self.basis.nshells:
            raise ValueError(
                f"sigma is {self.sigma.shape[0]}x..., basis has "
                f"{self.basis.nshells} shells"
            )
        if self.tau <= 0:
            raise ValueError(f"tau must be positive, got {self.tau}")

    @property
    def nshells(self) -> int:
        return self.basis.nshells

    @cached_property
    def sigma_max(self) -> float:
        """m = max_{M,N} sigma(M,N) (Sec II-D)."""
        return float(self.sigma.max())

    @cached_property
    def significant(self) -> np.ndarray:
        """Boolean matrix: pair (M, N) is significant (sigma >= tau / m).

        Diagonal pairs (M, M) are always kept significant: the prefetch
        coverage guarantee of Sec III-B (all six D blocks of a task's
        quartets lie inside the three fetch regions) relies on
        ``M in Phi(M)``, which holds for any realistic tau anyway.
        """
        out = self.sigma >= self.tau / self.sigma_max
        np.fill_diagonal(out, True)
        return out

    @cached_property
    def phi(self) -> list[np.ndarray]:
        """Phi(M): sorted array of shells significant with M, per shell."""
        return [np.flatnonzero(self.significant[m]) for m in range(self.nshells)]

    def phi_size(self) -> np.ndarray:
        return np.array([len(p) for p in self.phi], dtype=int)

    def quartet_survives(self, m: int, p: int, n: int, q: int) -> bool:
        """Cauchy-Schwarz test for quartet (MP|NQ)."""
        return self.sigma[m, p] * self.sigma[n, q] > self.tau

    # -- aggregate statistics for the performance model -----------------------

    @cached_property
    def avg_phi(self) -> float:
        """B: average significant-set size (Sec III-G)."""
        return float(self.phi_size().mean())

    @cached_property
    def avg_consecutive_overlap(self) -> float:
        """q: average |Phi(M) & Phi(M+1)| (Sec III-G, Eq 8)."""
        sig = self.significant
        if self.nshells < 2:
            return float(self.avg_phi)
        inter = np.logical_and(sig[:-1], sig[1:]).sum(axis=1)
        return float(inter.mean())

    @cached_property
    def avg_shell_size(self) -> float:
        """A: average basis functions per shell (Sec III-G)."""
        return float(self.basis.shell_sizes().mean())

    def phi_union(self, shells: np.ndarray) -> np.ndarray:
        """Union of Phi over a set of shells, as a boolean mask."""
        shells = np.asarray(shells, dtype=int)
        if shells.size == 0:
            return np.zeros(self.nshells, dtype=bool)
        return self.significant[shells].any(axis=0)

    def stats(self) -> dict:
        """Summary used in reports and by the performance model."""
        return {
            "nshells": self.nshells,
            "tau": self.tau,
            "sigma_max": self.sigma_max,
            "A_avg_shell_size": self.avg_shell_size,
            "B_avg_phi": self.avg_phi,
            "q_avg_overlap": self.avg_consecutive_overlap,
            "significant_pairs": int(self.significant.sum()),
        }
