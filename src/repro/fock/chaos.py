"""Chaos harness: prove the Fock build survives injected faults.

Runs the numeric GTFock build twice on identical inputs -- once
fault-free, once under a seeded :class:`~repro.runtime.faults.FaultPlan`
(stragglers, lossy one-sided ops, delayed messages, rank deaths) -- and
verifies the central robustness invariant:

    the faulted build's Fock matrix equals the fault-free one to
    ``<= 1e-12`` max elementwise difference, for *any* seeded plan that
    leaves at least one rank alive.

Only the virtual-time accounting may differ: retries, re-executed
tasks, and extra bytes show up as measurable recovery overhead (the
``retry`` flight channel, :class:`RecoveryRecord` entries, and the
fault-overhead counters), never as a numeric change.

The ``scf`` fault family (:func:`run_scf_chaos`) applies the same
invariant to *numerical* faults: a seeded
:class:`~repro.runtime.faults.SCFFaultPlan` corrupts batched ERI quartet
blocks with NaN/Inf, the convergence guard's per-quartet sentinel
rescues each one on the reference kernel, and the rescued Fock matrix
must still match the fault-free build to ``<= 1e-12``.

Driven by the ``repro chaos`` CLI and ``tests/test_faults.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.fock.gtfock import GTFockBuildResult, gtfock_build
from repro.obs import Tracer
from repro.runtime.faults import FaultPlan, SCFFaultPlan, random_plan
from repro.runtime.machine import LONESTAR, MachineConfig


@dataclass
class ChaosResult:
    """Fault-free vs faulted build comparison, plus recovery overhead."""

    molecule: str
    basis_name: str
    nproc: int
    plan: FaultPlan
    clean: GTFockBuildResult
    faulty: GTFockBuildResult
    #: max |F_faulty - F_clean| over all elements
    fock_error: float
    #: |E_faulty - E_clean| of the one-iteration electronic energy
    energy_error: float
    tolerance: float = 1e-12
    #: recovery-overhead summary (retries, re-executions, time ratio)
    overhead: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return self.fock_error <= self.tolerance

    def summary_lines(self) -> list[str]:
        o = self.overhead
        lines = [
            f"plan: {self.plan.describe()}",
            f"max |dF| = {self.fock_error:.3e} "
            f"(tolerance {self.tolerance:.0e}) -> "
            + ("PASS" if self.passed else "FAIL"),
            f"|dE| = {self.energy_error:.3e} Ha",
            f"dead ranks: {o.get('dead_ranks', [])}  "
            f"re-executed tasks: {o.get('reexecuted_tasks', 0)}  "
            f"recoveries: {o.get('recoveries', 0)}",
            f"retries: {o.get('retries_total', 0)}  "
            f"acks lost: {o.get('acks_lost_total', 0)}  "
            f"retry bytes: {o.get('retry_bytes', 0)}",
            f"makespan: {o.get('makespan_clean', 0.0):.4g} s clean -> "
            f"{o.get('makespan_faulty', 0.0):.4g} s under faults "
            f"(x{o.get('slowdown', 1.0):.2f})",
        ]
        return lines


def build_inputs(molecule: str, basis_name: str):
    """Molecule-name -> (engine, hcore, density, mol, basis), the same
    input pipeline the run-report driver uses."""
    from repro.chem import builders
    from repro.chem.basis.basisset import BasisSet
    from repro.chem.builders import paper_molecule
    from repro.fock.reorder import reorder_basis
    from repro.integrals.engine import MDEngine
    from repro.integrals.oneelec import core_hamiltonian, overlap
    from repro.scf.guess import core_guess
    from repro.scf.orthogonalization import orthogonalizer

    simple = {
        "water": builders.water,
        "h2": builders.h2,
        "methane": builders.methane,
        "benzene": builders.benzene,
    }
    mol = simple[molecule]() if molecule in simple else paper_molecule(molecule)
    basis = reorder_basis(BasisSet.build(mol, basis_name))
    engine = MDEngine(basis)
    hcore = core_hamiltonian(basis)
    x = orthogonalizer(overlap(basis))
    density = core_guess(hcore, x, mol.nelectrons // 2)
    return engine, hcore, density, mol, basis


def _one_iter_energy(density: np.ndarray, hcore: np.ndarray, fock: np.ndarray) -> float:
    """RHF electronic energy of this density/Fock pair: tr D (H + F)."""
    return float(np.sum(density * (hcore + fock)))


def run_chaos(
    molecule: str = "water",
    basis_name: str = "sto-3g",
    nproc: int = 4,
    tau: float = 1e-11,
    config: MachineConfig = LONESTAR,
    seed: int = 0,
    ndeaths: int = 1,
    nstragglers: int = 1,
    op_fail_rate: float = 0.05,
    delay_rate: float = 0.05,
    tolerance: float = 1e-12,
    plan: FaultPlan | None = None,
    tracer: Tracer | None = None,
) -> ChaosResult:
    """Run the fault-free/faulted build pair and compare.

    When ``plan`` is omitted, a :func:`random_plan` is derived from
    ``seed`` with the fault-free makespan as its horizon, so deaths land
    mid-execution regardless of problem size.  ``tracer`` (optional)
    captures the *faulted* run for report embedding.
    """
    engine, hcore, density, mol, basis = build_inputs(molecule, basis_name)
    clean = gtfock_build(
        engine, hcore, density, nproc, tau=tau, config=config
    )
    horizon = float(clean.outcome.makespan)
    if plan is None:
        plan = random_plan(
            seed,
            nproc,
            horizon,
            ndeaths=ndeaths,
            nstragglers=nstragglers,
            op_fail_rate=op_fail_rate,
            delay_rate=delay_rate,
        )
    faulty = gtfock_build(
        engine, hcore, density, nproc, tau=tau, config=config,
        screen=clean.screen, tracer=tracer, faults=plan,
    )
    fock_error = float(np.max(np.abs(faulty.fock - clean.fock)))
    energy_error = abs(
        _one_iter_energy(density, hcore, faulty.fock)
        - _one_iter_energy(density, hcore, clean.fock)
    )
    fstate = faulty.faults
    overhead = dict(fstate.overhead_summary()) if fstate is not None else {}
    overhead.update(
        dead_ranks=list(faulty.outcome.dead_ranks),
        reexecuted_tasks=int(faulty.outcome.reexecuted_tasks),
        recoveries=len(faulty.outcome.recoveries),
        retry_bytes=int(faulty.stats.flight.per_rank("retry", "bytes").sum()),
        makespan_clean=float(clean.stats.clock.max()),
        makespan_faulty=float(faulty.stats.clock.max()),
        slowdown=(
            float(faulty.stats.clock.max()) / float(clean.stats.clock.max())
            if float(clean.stats.clock.max()) > 0
            else 1.0
        ),
    )
    return ChaosResult(
        molecule=mol.name or mol.formula,
        basis_name=basis_name,
        nproc=nproc,
        plan=plan,
        clean=clean,
        faulty=faulty,
        fock_error=fock_error,
        energy_error=energy_error,
        tolerance=tolerance,
        overhead=overhead,
    )


@dataclass
class SCFChaosResult:
    """Clean vs NaN-corrupted-and-rescued Fock build comparison."""

    molecule: str
    basis_name: str
    plan: SCFFaultPlan
    #: max |F_rescued - F_clean| over all elements
    fock_error: float
    #: |dE| of the one-iteration electronic energy
    energy_error: float
    #: batched ERI blocks the plan corrupted
    quartets_corrupted: int
    #: corrupted blocks the sentinel recomputed on the reference kernel
    eri_rescues: int
    tolerance: float = 1e-12

    @property
    def passed(self) -> bool:
        return (
            self.fock_error <= self.tolerance
            and self.eri_rescues >= self.quartets_corrupted
        )

    def summary_lines(self) -> list[str]:
        return [
            f"plan: {self.plan.describe()}",
            f"corrupted quartet blocks: {self.quartets_corrupted}  "
            f"rescued on reference kernel: {self.eri_rescues}",
            f"max |dF| = {self.fock_error:.3e} "
            f"(tolerance {self.tolerance:.0e}) -> "
            + ("PASS" if self.passed else "FAIL"),
            f"|dE| = {self.energy_error:.3e} Ha",
        ]


def run_scf_chaos(
    molecule: str = "water",
    basis_name: str = "sto-3g",
    tau: float = 1e-11,
    seed: int = 0,
    quartet_nan_rate: float = 0.05,
    tolerance: float = 1e-12,
    plan: SCFFaultPlan | None = None,
) -> SCFChaosResult:
    """The ``scf`` fault family's invariant gate.

    Builds the Fock matrix twice from identical inputs on the batched
    MD engine -- once clean, once with a seeded
    :class:`~repro.runtime.faults.SCFFaultPlan` corrupting quartet
    blocks and the per-quartet NaN/Inf sentinel armed -- and verifies
    every corruption was rescued (recomputed on the reference kernel)
    with ``max |dF| <= tolerance``.
    """
    from repro.scf.fock import fock_matrix

    engine, hcore, density, mol, basis = build_inputs(molecule, basis_name)
    clean = fock_matrix(engine, hcore, density, tau)
    if plan is None:
        plan = SCFFaultPlan(
            seed=seed,
            quartet_nan_rate=quartet_nan_rate / 2,
            quartet_inf_rate=quartet_nan_rate / 2,
        )
    faulty_engine, *_ = build_inputs(molecule, basis_name)
    fstate = plan.activate()
    faulty_engine.scf_faults = fstate
    faulty_engine.finite_check = True
    rescued = fock_matrix(faulty_engine, hcore, density, tau)
    fock_error = float(np.max(np.abs(rescued - clean)))
    energy_error = abs(
        _one_iter_energy(density, hcore, rescued)
        - _one_iter_energy(density, hcore, clean)
    )
    return SCFChaosResult(
        molecule=mol.name or mol.formula,
        basis_name=basis_name,
        plan=plan,
        fock_error=fock_error,
        energy_error=energy_error,
        quartets_corrupted=fstate.quartets_corrupted,
        eri_rescues=faulty_engine.eri_rescues,
        tolerance=tolerance,
    )
