"""Chaos harness: prove the Fock build survives injected faults.

Runs the numeric GTFock build twice on identical inputs -- once
fault-free, once under a seeded :class:`~repro.runtime.faults.FaultPlan`
(stragglers, lossy one-sided ops, delayed messages, rank deaths) -- and
verifies the central robustness invariant:

    the faulted build's Fock matrix equals the fault-free one to
    ``<= 1e-12`` max elementwise difference, for *any* seeded plan that
    leaves at least one rank alive.

Only the virtual-time accounting may differ: retries, re-executed
tasks, and extra bytes show up as measurable recovery overhead (the
``retry`` flight channel, :class:`RecoveryRecord` entries, and the
fault-overhead counters), never as a numeric change.

The ``scf`` fault family (:func:`run_scf_chaos`) applies the same
invariant to *numerical* faults: a seeded
:class:`~repro.runtime.faults.SCFFaultPlan` corrupts batched ERI quartet
blocks with NaN/Inf, the convergence guard's per-quartet sentinel
rescues each one on the reference kernel, and the rescued Fock matrix
must still match the fault-free build to ``<= 1e-12``.

The ``sdc`` fault family (:func:`run_sdc_chaos`) is the *silent*
variant: a seeded :class:`~repro.runtime.sdc.SDCFaultPlan` bit-flips
on-disk store blocks and checkpoint files, exponent-flips in-memory F/D
elements, and corrupts GA accumulate payloads in flight -- none of
which raises anything on its own.  The gate demands every injected
corruption be *detected* by an integrity layer (zero silent
acceptances), zero detections on a fault-free run (zero false
positives), and the recovered run's F/E equal to the clean run's to
``<= 1e-12``.

Driven by the ``repro chaos`` CLI and ``tests/test_faults.py`` /
``tests/test_sdc.py``.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.fock.gtfock import GTFockBuildResult, gtfock_build
from repro.obs import Tracer
from repro.runtime.faults import FaultPlan, SCFFaultPlan, random_plan
from repro.runtime.machine import LONESTAR, MachineConfig
from repro.runtime.sdc import SDCFaultPlan, random_sdc_plan


@dataclass
class ChaosResult:
    """Fault-free vs faulted build comparison, plus recovery overhead."""

    molecule: str
    basis_name: str
    nproc: int
    plan: FaultPlan
    clean: GTFockBuildResult
    faulty: GTFockBuildResult
    #: max |F_faulty - F_clean| over all elements
    fock_error: float
    #: |E_faulty - E_clean| of the one-iteration electronic energy
    energy_error: float
    tolerance: float = 1e-12
    #: recovery-overhead summary (retries, re-executions, time ratio)
    overhead: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return self.fock_error <= self.tolerance

    def summary_lines(self) -> list[str]:
        o = self.overhead
        lines = [
            f"plan: {self.plan.describe()}",
            f"max |dF| = {self.fock_error:.3e} "
            f"(tolerance {self.tolerance:.0e}) -> "
            + ("PASS" if self.passed else "FAIL"),
            f"|dE| = {self.energy_error:.3e} Ha",
            f"dead ranks: {o.get('dead_ranks', [])}  "
            f"re-executed tasks: {o.get('reexecuted_tasks', 0)}  "
            f"recoveries: {o.get('recoveries', 0)}",
            f"retries: {o.get('retries_total', 0)}  "
            f"acks lost: {o.get('acks_lost_total', 0)}  "
            f"retry bytes: {o.get('retry_bytes', 0)}",
            f"makespan: {o.get('makespan_clean', 0.0):.4g} s clean -> "
            f"{o.get('makespan_faulty', 0.0):.4g} s under faults "
            f"(x{o.get('slowdown', 1.0):.2f})",
        ]
        return lines


def build_inputs(molecule: str, basis_name: str):
    """Molecule-name -> (engine, hcore, density, mol, basis), the same
    input pipeline the run-report driver uses."""
    from repro.chem import builders
    from repro.chem.basis.basisset import BasisSet
    from repro.chem.builders import paper_molecule
    from repro.fock.reorder import reorder_basis
    from repro.integrals.engine import MDEngine
    from repro.integrals.oneelec import core_hamiltonian, overlap
    from repro.scf.guess import core_guess
    from repro.scf.orthogonalization import orthogonalizer

    simple = {
        "water": builders.water,
        "h2": builders.h2,
        "methane": builders.methane,
        "benzene": builders.benzene,
    }
    mol = simple[molecule]() if molecule in simple else paper_molecule(molecule)
    basis = reorder_basis(BasisSet.build(mol, basis_name))
    engine = MDEngine(basis)
    hcore = core_hamiltonian(basis)
    x = orthogonalizer(overlap(basis))
    density = core_guess(hcore, x, mol.nelectrons // 2)
    return engine, hcore, density, mol, basis


def _one_iter_energy(density: np.ndarray, hcore: np.ndarray, fock: np.ndarray) -> float:
    """RHF electronic energy of this density/Fock pair: tr D (H + F)."""
    return float(np.sum(density * (hcore + fock)))


def run_chaos(
    molecule: str = "water",
    basis_name: str = "sto-3g",
    nproc: int = 4,
    tau: float = 1e-11,
    config: MachineConfig = LONESTAR,
    seed: int = 0,
    ndeaths: int = 1,
    nstragglers: int = 1,
    op_fail_rate: float = 0.05,
    delay_rate: float = 0.05,
    tolerance: float = 1e-12,
    plan: FaultPlan | None = None,
    tracer: Tracer | None = None,
) -> ChaosResult:
    """Run the fault-free/faulted build pair and compare.

    When ``plan`` is omitted, a :func:`random_plan` is derived from
    ``seed`` with the fault-free makespan as its horizon, so deaths land
    mid-execution regardless of problem size.  ``tracer`` (optional)
    captures the *faulted* run for report embedding.
    """
    engine, hcore, density, mol, basis = build_inputs(molecule, basis_name)
    clean = gtfock_build(
        engine, hcore, density, nproc, tau=tau, config=config
    )
    horizon = float(clean.outcome.makespan)
    if plan is None:
        plan = random_plan(
            seed,
            nproc,
            horizon,
            ndeaths=ndeaths,
            nstragglers=nstragglers,
            op_fail_rate=op_fail_rate,
            delay_rate=delay_rate,
        )
    faulty = gtfock_build(
        engine, hcore, density, nproc, tau=tau, config=config,
        screen=clean.screen, tracer=tracer, faults=plan,
    )
    fock_error = float(np.max(np.abs(faulty.fock - clean.fock)))
    energy_error = abs(
        _one_iter_energy(density, hcore, faulty.fock)
        - _one_iter_energy(density, hcore, clean.fock)
    )
    fstate = faulty.faults
    overhead = dict(fstate.overhead_summary()) if fstate is not None else {}
    overhead.update(
        dead_ranks=list(faulty.outcome.dead_ranks),
        reexecuted_tasks=int(faulty.outcome.reexecuted_tasks),
        recoveries=len(faulty.outcome.recoveries),
        retry_bytes=int(faulty.stats.flight.per_rank("retry", "bytes").sum()),
        makespan_clean=float(clean.stats.clock.max()),
        makespan_faulty=float(faulty.stats.clock.max()),
        slowdown=(
            float(faulty.stats.clock.max()) / float(clean.stats.clock.max())
            if float(clean.stats.clock.max()) > 0
            else 1.0
        ),
    )
    return ChaosResult(
        molecule=mol.name or mol.formula,
        basis_name=basis_name,
        nproc=nproc,
        plan=plan,
        clean=clean,
        faulty=faulty,
        fock_error=fock_error,
        energy_error=energy_error,
        tolerance=tolerance,
        overhead=overhead,
    )


@dataclass
class SCFChaosResult:
    """Clean vs NaN-corrupted-and-rescued Fock build comparison."""

    molecule: str
    basis_name: str
    plan: SCFFaultPlan
    #: max |F_rescued - F_clean| over all elements
    fock_error: float
    #: |dE| of the one-iteration electronic energy
    energy_error: float
    #: batched ERI blocks the plan corrupted
    quartets_corrupted: int
    #: corrupted blocks the sentinel recomputed on the reference kernel
    eri_rescues: int
    tolerance: float = 1e-12

    @property
    def passed(self) -> bool:
        return (
            self.fock_error <= self.tolerance
            and self.eri_rescues >= self.quartets_corrupted
        )

    def summary_lines(self) -> list[str]:
        return [
            f"plan: {self.plan.describe()}",
            f"corrupted quartet blocks: {self.quartets_corrupted}  "
            f"rescued on reference kernel: {self.eri_rescues}",
            f"max |dF| = {self.fock_error:.3e} "
            f"(tolerance {self.tolerance:.0e}) -> "
            + ("PASS" if self.passed else "FAIL"),
            f"|dE| = {self.energy_error:.3e} Ha",
        ]


def run_scf_chaos(
    molecule: str = "water",
    basis_name: str = "sto-3g",
    tau: float = 1e-11,
    seed: int = 0,
    quartet_nan_rate: float = 0.05,
    tolerance: float = 1e-12,
    plan: SCFFaultPlan | None = None,
) -> SCFChaosResult:
    """The ``scf`` fault family's invariant gate.

    Builds the Fock matrix twice from identical inputs on the batched
    MD engine -- once clean, once with a seeded
    :class:`~repro.runtime.faults.SCFFaultPlan` corrupting quartet
    blocks and the per-quartet NaN/Inf sentinel armed -- and verifies
    every corruption was rescued (recomputed on the reference kernel)
    with ``max |dF| <= tolerance``.
    """
    from repro.scf.fock import fock_matrix

    engine, hcore, density, mol, basis = build_inputs(molecule, basis_name)
    clean = fock_matrix(engine, hcore, density, tau)
    if plan is None:
        plan = SCFFaultPlan(
            seed=seed,
            quartet_nan_rate=quartet_nan_rate / 2,
            quartet_inf_rate=quartet_nan_rate / 2,
        )
    faulty_engine, *_ = build_inputs(molecule, basis_name)
    fstate = plan.activate()
    faulty_engine.scf_faults = fstate
    faulty_engine.finite_check = True
    rescued = fock_matrix(faulty_engine, hcore, density, tau)
    fock_error = float(np.max(np.abs(rescued - clean)))
    energy_error = abs(
        _one_iter_energy(density, hcore, rescued)
        - _one_iter_energy(density, hcore, clean)
    )
    return SCFChaosResult(
        molecule=mol.name or mol.formula,
        basis_name=basis_name,
        plan=plan,
        fock_error=fock_error,
        energy_error=energy_error,
        quartets_corrupted=fstate.quartets_corrupted,
        eri_rescues=faulty_engine.eri_rescues,
        tolerance=tolerance,
    )


@dataclass
class SDCChaosResult:
    """Clean vs silently-corrupted-and-recovered SCF run comparison.

    ``injected`` / ``detected`` / ``silent`` count corruptions per kind
    (``store_block``, ``checkpoint``, ``matrix``, ``ga_payload``);
    ``silent[k] = max(0, injected[k] - detected[k])`` and the gate
    demands every ``silent`` entry be zero -- a corruption nobody
    noticed is exactly the failure mode this family exists to rule out.
    """

    molecule: str
    basis_name: str
    plan: SDCFaultPlan
    #: max |F_sdc - F_clean| of the final Fock matrices
    fock_error: float
    #: |E_sdc - E_clean| of the converged total energies
    energy_error: float
    injected: dict = field(default_factory=dict)
    detected: dict = field(default_factory=dict)
    silent: dict = field(default_factory=dict)
    #: detections on the fault-free integrity-on run (must be zero)
    false_positives: int = 0
    #: max |GA - expected| after checksummed accumulates under payload
    #: corruption (must be exactly zero: rejects are retransmitted)
    ga_error: float = 0.0
    #: an intact snapshot survived the checkpoint bit flips
    checkpoint_intact: bool = False
    #: :meth:`IntegrityMonitor.summary` of the corrupted run
    integrity_summary: dict | None = None
    #: fault-free warm-store wall time, integrity off / on
    wall_off_s: float = 0.0
    wall_on_s: float = 0.0
    tolerance: float = 1e-12

    @property
    def injections_total(self) -> int:
        return sum(self.injected.values())

    @property
    def silent_total(self) -> int:
        return sum(self.silent.values())

    @property
    def overhead(self) -> float:
        """Fractional integrity overhead on the fault-free warm run."""
        if self.wall_off_s <= 0:
            return 0.0
        return self.wall_on_s / self.wall_off_s - 1.0

    @property
    def passed(self) -> bool:
        return (
            self.injections_total > 0
            and self.silent_total == 0
            and self.false_positives == 0
            and self.fock_error <= self.tolerance
            and self.energy_error <= self.tolerance
            and self.ga_error == 0.0
            and self.checkpoint_intact
        )

    def summary_lines(self) -> list[str]:
        kinds = sorted(set(self.injected) | set(self.detected))
        lines = [f"plan: {self.plan.describe()}"]
        for kind in kinds:
            inj = self.injected.get(kind, 0)
            det = self.detected.get(kind, 0)
            sil = self.silent.get(kind, 0)
            lines.append(
                f"{kind}: injected {inj}  detected {det}  "
                + ("SILENT %d" % sil if sil else "silent 0")
            )
        lines += [
            f"false positives on clean run: {self.false_positives}",
            f"GA after retransmits: max error {self.ga_error:.3e}  "
            f"intact checkpoint survives: {self.checkpoint_intact}",
            f"max |dF| = {self.fock_error:.3e}  |dE| = "
            f"{self.energy_error:.3e} Ha (tolerance {self.tolerance:.0e})",
            f"integrity overhead (fault-free, warm store): "
            f"{self.overhead * 100:.1f}%",
            "verdict: " + ("PASS" if self.passed else "FAIL"),
        ]
        return lines


def run_sdc_chaos(
    molecule: str = "water",
    basis_name: str = "6-31g",
    tau: float = 1e-11,
    seed: int = 0,
    tolerance: float = 1e-12,
    plan: SDCFaultPlan | None = None,
    workdir: str | Path | None = None,
) -> SDCChaosResult:
    """The ``sdc`` fault family's zero-silent-acceptance gate.

    Five phases in one work directory (a temporary one unless
    ``workdir`` is given -- pass one to keep the corrupted tree for a
    ``repro verify`` audit):

    1. a clean stored-integral SCF run fills ``store/`` and writes
       clean checkpoints -- the trajectory baseline;
    2. fault-free integrity control: the same run, warm store, with
       integrity off then on -- wall-clock overhead plus the
       zero-false-positive check;
    3. the plan bit-flips on-disk store blocks;
    4. the corrupted run: same inputs, ``integrity=True``, sdc faults
       flipping F/D elements in memory and checkpoint files post-write,
       every store read CRC-verified -- must finish with F and E equal
       to the clean run's to ``tolerance`` (all recoveries recompute
       bitwise-identical data) and an intact snapshot still loadable;
    5. a checksummed :class:`~repro.runtime.ga.GlobalArray` under
       in-flight payload corruption -- every reject retransmitted, the
       final array exactly equal to the expected sum.
    """
    from repro.runtime.ga import GlobalArray, block_bounds
    from repro.runtime.network import CommStats
    from repro.scf.checkpoint import (
        checkpoint_paths,
        load_checkpoint,
        load_latest_intact,
    )
    from repro.scf.hf import RHF

    if plan is None:
        plan = random_sdc_plan(seed)
    tmp = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-sdc-")
        workdir = tmp.name
    workdir = Path(workdir)
    store_dir = workdir / "store"
    ckpt_clean = workdir / "ckpt-clean"
    ckpt_sdc = workdir / "ckpt-sdc"
    try:
        from repro.chem import builders
        from repro.chem.builders import paper_molecule

        simple = {
            "water": builders.water,
            "h2": builders.h2,
            "methane": builders.methane,
            "benzene": builders.benzene,
        }
        mol = (
            simple[molecule]()
            if molecule in simple
            else paper_molecule(molecule)
        )

        def make_rhf(ckpt_dir=None, integrity=False, sdc=None):
            return RHF(
                mol, basis_name=basis_name, tau=tau,
                integral_store=str(store_dir),
                checkpoint_dir=None if ckpt_dir is None else str(ckpt_dir),
                integrity=integrity, sdc_faults=sdc,
            )

        # 1. clean baseline (fills + finalizes the store)
        clean = make_rhf(ckpt_dir=ckpt_clean).run()

        # 2. fault-free control on the warm store: overhead + the
        #    false-positive gate (detections here must be zero)
        t0 = time.perf_counter()
        make_rhf().run()
        wall_off = time.perf_counter() - t0
        t0 = time.perf_counter()
        control = make_rhf(integrity=True).run()
        wall_on = time.perf_counter() - t0
        false_positives = control.integrity_summary["detections_total"]

        # 3. silently rot the on-disk store
        store_state = plan.activate()
        store_state.corrupt_store_dir(store_dir)

        # 4. the corrupted run: detectors armed, sdc matrix/file faults
        rhf = make_rhf(ckpt_dir=ckpt_sdc, integrity=True, sdc=plan)
        sdc_result = rhf.run()
        sdc_state = rhf.sdc_state
        summary = sdc_result.integrity_summary
        detections = summary["detections"]

        # offline checkpoint audit: every flipped file must fail
        # verification, and an intact snapshot must still be loadable
        import warnings as _warnings

        ckpt_detected = 0
        for path in checkpoint_paths(ckpt_sdc):
            try:
                load_checkpoint(path, verify=True)
            except Exception:
                ckpt_detected += 1
        with _warnings.catch_warnings():
            _warnings.simplefilter("ignore")
            checkpoint_intact = load_latest_intact(ckpt_sdc) is not None

        # 5. checksummed GA accumulates under in-flight corruption
        ga_plan = SDCFaultPlan(seed=plan.seed, payload_flip_rate=0.25)
        ga_state = ga_plan.activate()
        rng = np.random.default_rng(plan.seed)
        n = 12
        bounds = block_bounds(n, 2)
        stats = CommStats(4, LONESTAR)
        ga = GlobalArray(
            stats, n, n, bounds, bounds, checksums=True, sdc=ga_state
        )
        expected = np.zeros((n, n))
        for k in range(32):
            r0, c0 = int(rng.integers(n - 4)), int(rng.integers(n - 4))
            block = rng.standard_normal((4, 4))
            ga.acc(k % 4, r0, c0, block, tag=("sdc", k))
            expected[r0:r0 + 4, c0:c0 + 4] += block
        ga_error = float(np.max(np.abs(ga.to_numpy() - expected)))

        injected = {
            "store_block": int(store_state.blocks_corrupted),
            "checkpoint": int(sdc_state.files_corrupted),
            "matrix": int(sdc_state.matrices_corrupted),
            "ga_payload": int(ga_state.payloads_corrupted),
        }
        detected = {
            "store_block": int(detections.get("store_block", 0)),
            "checkpoint": int(ckpt_detected),
            "matrix": int(
                detections.get("fock_matrix", 0)
                + detections.get("density_matrix", 0)
            ),
            "ga_payload": int(ga.checksum_rejects),
        }
        silent = {
            kind: max(0, injected[kind] - detected[kind])
            for kind in injected
        }
        return SDCChaosResult(
            molecule=mol.name or mol.formula,
            basis_name=basis_name,
            plan=plan,
            fock_error=float(
                np.max(np.abs(sdc_result.fock - clean.fock))
            ),
            energy_error=abs(sdc_result.energy - clean.energy),
            injected=injected,
            detected=detected,
            silent=silent,
            false_positives=int(false_positives),
            ga_error=ga_error,
            checkpoint_intact=checkpoint_intact,
            integrity_summary=summary,
            wall_off_s=wall_off,
            wall_on_s=wall_on,
            tolerance=tolerance,
        )
    finally:
        if tmp is not None:
            tmp.cleanup()
