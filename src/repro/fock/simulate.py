"""Timing-level simulation of both Fock-build algorithms (Sec IV).

Runs the *same* partitioning, screening, footprint, and scheduling code
paths as the numeric builders, but charges modeled time per ERI and per
byte instead of moving data -- which is what lets the simulated machine
scale to the paper's molecules and core counts.  Produces the per-run
quantities behind every evaluation artifact:

* Table III/IV: ``t_fock_max`` per (molecule, cores, algorithm);
* Figure 2:     ``t_comp_avg`` vs ``t_overhead_avg``;
* Table VI/VII: ``comm_mb_per_proc`` / ``ga_calls_per_proc``;
* Table VIII:   ``load_balance``;
* Sec IV-C:     ``counter_accesses`` / ``queue_ops``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Callable

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.fock.centralized import run_centralized
from repro.fock.cost import TaskCosts, quartet_cost_matrix
from repro.fock.nwchem_cost import build_nwchem_task_arrays
from repro.fock.partition import StaticPartition
from repro.fock.prefetch import block_footprint, ga_calls_for_footprint
from repro.fock.screening_map import ScreeningMap
from repro.fock.stealing import StealingOutcome, run_work_stealing
from repro.obs import Tracer, get_metrics, get_tracer
from repro.obs.flight import CH_FOCK_ACC, CH_PREFETCH_GET, CH_TASK_GET
from repro.obs.profile import PHASE_SIM_LOOP, get_profiler
from repro.obs.trace import NullTracer
from repro.runtime.faults import FaultPlan, FaultState
from repro.runtime.machine import LONESTAR, MachineConfig
from repro.runtime.network import CommStats


@dataclass
class FockSimResult:
    """One simulated Fock construction (one cell of Table III)."""

    algorithm: str
    molecule: str
    cores: int
    nproc: int
    #: Fock construction time = slowest process (Table III)
    t_fock_max: float
    t_fock_avg: float
    #: average pure-computation time per process (Figure 2)
    t_comp_avg: float
    #: average parallel overhead T_ov = T_fock - T_comp (Figure 2)
    t_overhead_avg: float
    #: l = T_max / T_avg (Table VIII)
    load_balance: float
    #: average GA volume per process, MB (Table VI)
    comm_mb_per_proc: float
    #: average GA calls per process (Table VII)
    ga_calls_per_proc: float
    #: average processes stolen from, s of Eq (9) (GTFock only)
    steals_avg: float = 0.0
    #: total accesses to the centralized counter (NWChem only)
    counter_accesses: int = 0
    #: average atomic local-queue operations per process (GTFock only)
    queue_ops_avg: float = 0.0
    total_eris: float = 0.0
    ntasks: int = 0
    #: :meth:`CommStats.summary` of the run (volume, calls, load balance)
    comm_summary: dict = field(default_factory=dict)
    #: all-rank bytes per flight-recorder channel (Table VI decomposition)
    comm_by_channel: dict = field(default_factory=dict)
    #: ranks killed by the fault plan (empty outside fault injection)
    dead_ranks: list = field(default_factory=list)
    #: tasks whose results died with their rank and were re-executed
    reexecuted_tasks: int = 0
    #: orphan-adoption events by survivors
    recoveries: int = 0
    #: retry/backoff/ack-loss totals (:meth:`FaultState.overhead_summary`)
    fault_overhead: dict = field(default_factory=dict)
    #: average per-rank endgame idle (makespan - own finish), seconds
    idle_seconds_avg: float = 0.0
    #: idle_seconds_avg / makespan -- the Table VI idle-fraction column
    idle_fraction: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


class SimCapture:
    """Raw per-run state captured for the critical-path analyzer.

    A mutable container the caller hands to :func:`simulate_gtfock` (or
    :func:`repro.fock.gtfock.gtfock_build`) via ``capture=``; the
    simulation fills it with the accounting objects the analyzer in
    :mod:`repro.obs.critpath` consumes.  Deliberately *not* part of
    :class:`FockSimResult`: the result must stay ``asdict``-serializable
    while the capture holds live objects (tracer, closures, numpy
    arrays).

    Attributes are populated by the run; all default to ``None``/empty
    so a partially filled capture fails loudly in the analyzer rather
    than silently here.
    """

    def __init__(self) -> None:
        self.algorithm: str = ""
        self.molecule: str = ""
        self.cores: int = 0
        self.nproc: int = 0
        self.config: MachineConfig | None = None
        self.stats: CommStats | None = None
        self.outcome: StealingOutcome | None = None
        #: per-rank end time *after* the final F flush (= makespan input)
        self.finish: np.ndarray | None = None
        #: per-rank virtual seconds spent in the prefetch phase
        self.prefetch_time: np.ndarray | None = None
        #: per-rank virtual seconds spent in the final F flush
        self.flush_time: np.ndarray | None = None
        #: tracer that recorded the run's virtual spans (may be a no-op)
        self.tracer: Tracer | None = None
        #: event-resolution log: ``(action, time, key)`` in pop order
        self.events: list[tuple[str, float, Any]] = []
        #: re-run the identical simulation under perturbed parameters;
        #: ``resimulate(enable_stealing=..., **config_overrides) -> makespan``
        self.resimulate: Callable[..., float] | None = None

    @property
    def makespan(self) -> float:
        if self.finish is None:
            raise ValueError("capture not populated: run a simulation first")
        return float(np.max(self.finish))


def _finalize(
    algorithm: str,
    molecule: str,
    cores: int,
    stats: CommStats,
    t_comp: np.ndarray,
    finish: np.ndarray,
    **extra,
) -> FockSimResult:
    t_avg = float(finish.mean())
    t_max = float(finish.max())
    # endgame idle: each rank waits at the closing barrier for the
    # slowest one; exported per rank so the observatory can watch the
    # balance story behind Table VIII, not just its summary ratio
    idle = t_max - finish
    gauge = get_metrics().gauge(
        "repro_sim_idle_seconds",
        "Per-rank endgame idle time in the simulated Fock build "
        "(makespan minus own finish)",
        labelnames=("proc", "algorithm"),
    )
    for p in range(stats.nproc):
        gauge.set(float(idle[p]), proc=p, algorithm=algorithm)
    # the Fock phase ends at a barrier: average parallel overhead counts
    # everything that is not computation -- communication, scheduler
    # waits, and endgame idling behind the slowest process (the paper's
    # three overhead sources, Sec IV-C)
    return FockSimResult(
        algorithm=algorithm,
        molecule=molecule,
        cores=cores,
        nproc=stats.nproc,
        t_fock_max=float(finish.max()),
        t_fock_avg=t_avg,
        t_comp_avg=float(t_comp.mean()),
        t_overhead_avg=max(float(finish.max()) - float(t_comp.mean()), 0.0),
        load_balance=float(finish.max()) / t_avg if t_avg > 0 else 1.0,
        comm_mb_per_proc=stats.volume_mb_per_process(),
        ga_calls_per_proc=stats.calls_per_process(),
        comm_summary=stats.summary(),
        comm_by_channel=stats.flight.channel_totals("bytes"),
        idle_seconds_avg=float(idle.mean()),
        idle_fraction=float(idle.mean()) / t_max if t_max > 0 else 0.0,
        **extra,
    )


def simulate_gtfock(
    basis: BasisSet,
    screen: ScreeningMap,
    cores: int,
    config: MachineConfig = LONESTAR,
    costs: TaskCosts | None = None,
    enable_stealing: bool = True,
    molecule_name: str = "",
    faults: FaultPlan | FaultState | None = None,
    tracer: Tracer | None = None,
    capture: SimCapture | None = None,
) -> FockSimResult:
    """Simulate the paper's algorithm at ``cores`` total cores.

    GTFock runs one process per node with node-wide threading
    (Sec IV-A), so ``nproc = max(1, cores // cores_per_node)`` and each
    process computes ERIs at node rate.

    ``faults`` runs the timing simulation under fault injection: the
    result additionally carries dead ranks, re-executed task counts and
    retry overhead, and every retried transfer shows up on the
    flight recorder's ``retry`` channel.

    ``capture`` is an optional :class:`SimCapture` that the run fills
    with the raw accounting (stats, stealing outcome, phase times,
    event log, a ``resimulate`` closure) for
    :func:`repro.obs.critpath.analyze`.
    """
    if cores < 1:
        raise ValueError("cores must be >= 1")
    if tracer is None:
        tracer = get_tracer()
    nproc = max(1, cores // config.cores_per_node)
    threads = min(cores, config.cores_per_node)
    if costs is None:
        costs = quartet_cost_matrix(screen)
    ns = basis.nshells
    if isinstance(faults, FaultPlan):
        fstate: FaultState | None = faults.activate(nproc)
    else:
        fstate = faults
    part = StaticPartition.build(ns, nproc)
    stats = CommStats(nproc, config, faults=fstate)

    # -- prefetch: exact union footprint volume, boxed-region call count ----
    footprint_bytes = np.zeros(nproc)
    prefetch_time = np.zeros(nproc)
    prefetch_calls = np.zeros(nproc, dtype=np.int64)
    for p in range(nproc):
        fp = block_footprint(screen, part.task_block(p))
        calls = ga_calls_for_footprint(
            fp, part.row_shell_bounds, part.col_shell_bounds
        )
        nbytes = fp.elements * config.element_size
        footprint_bytes[p] = nbytes
        prefetch_calls[p] = calls
        clock0 = float(stats.clock[p])
        stats.charge_comm(
            p, nbytes, ncalls=calls, remote=True, channel=CH_PREFETCH_GET
        )
        prefetch_time[p] = float(stats.clock[p]) - clock0
        if tracer.enabled and prefetch_time[p] > 0:
            tracer.virtual_span(
                "prefetch", p, clock0, float(stats.clock[p]), cat="comm",
                nbytes=float(nbytes), calls=int(calls),
            )

    # -- work-stealing execution over per-task costs ------------------------
    t_task = config.t_int_gtfock / threads
    eris_flat = costs.eris.ravel()

    def cost_of(code: int) -> float:
        return float(eris_flat[code]) * t_task + config.task_overhead

    # "When a process steals from a new victim" (Sec III-F): the D-buffer
    # copy is paid once per (thief, victim) pair; repeat steals from the
    # same victim reuse the already-copied buffer.
    seen_victims: set[tuple[int, int]] = set()

    def steal_cost(thief: int, victim: int) -> float:
        if (thief, victim) in seen_victims:
            return 0.0
        seen_victims.add((thief, victim))
        nbytes = footprint_bytes[victim]
        return stats.charge_steal(thief, nbytes, ncalls=1)

    queues = []
    for p in range(nproc):
        blk = part.task_block(p)
        rows = np.arange(blk.row_lo, blk.row_hi)
        cols = np.arange(blk.col_lo, blk.col_hi)
        codes = (rows[:, None] * ns + cols[None, :]).ravel()
        queues.append(codes.tolist())

    event_observer = None
    if capture is not None:
        event_observer = lambda action, time, key: capture.events.append(
            (action, time, key)
        )

    with get_profiler().phase(PHASE_SIM_LOOP):
        outcome = run_work_stealing(
            queues,
            cost_of,
            (part.prow, part.pcol),
            stats=stats,
            steal_cost=steal_cost,
            enable_stealing=enable_stealing,
            tracer=tracer,
            faults=fstate,
            rng=fstate.rng if fstate is not None else None,
            event_observer=event_observer,
        )

    # -- final flush of the F buffers ----------------------------------------
    finish = outcome.finish_time.copy()
    flush_time = np.zeros(nproc)
    dead = set(outcome.dead_ranks)
    for p in range(nproc):
        if p in dead:
            continue  # a dead rank never flushes; survivors re-flushed its work
        fp_calls = 3  # three near-contiguous F regions accumulated back
        clock0 = float(stats.clock[p])
        stats.charge_comm(
            p, footprint_bytes[p], ncalls=fp_calls, remote=True,
            channel=CH_FOCK_ACC,
        )
        # clock delta, not transfer_time: under fault injection the
        # flush also pays retries and backoff
        flush_time[p] = float(stats.clock[p]) - clock0
        finish[p] += flush_time[p]
        if tracer.enabled and flush_time[p] > 0:
            tracer.virtual_span(
                "flush", p, float(finish[p]) - flush_time[p], float(finish[p]),
                cat="comm", nbytes=float(footprint_bytes[p]), calls=fp_calls,
            )

    if capture is not None:
        capture.algorithm = "gtfock"
        capture.molecule = molecule_name or (
            basis.molecule.name or basis.molecule.formula
        )
        capture.cores = cores
        capture.nproc = nproc
        capture.config = config
        capture.stats = stats
        capture.outcome = outcome
        capture.finish = finish.copy()
        capture.prefetch_time = prefetch_time
        capture.flush_time = flush_time
        capture.tracer = tracer

        def resimulate(enable_stealing=enable_stealing, **overrides) -> float:
            """Re-run this exact simulation under perturbed parameters."""
            from repro.obs.metrics import set_metrics

            cfg = config.with_(**overrides) if overrides else config
            # a what-if re-simulation must not overwrite the primary
            # run's exported metrics: divert them to a throwaway registry
            previous = set_metrics(None)
            try:
                res = simulate_gtfock(
                    basis,
                    screen,
                    cores,
                    config=cfg,
                    costs=costs,
                    enable_stealing=enable_stealing,
                    molecule_name=molecule_name,
                    faults=faults,
                    tracer=NullTracer(),
                )
            finally:
                set_metrics(previous)
            return res.t_fock_max

        capture.resimulate = resimulate

    return _finalize(
        "gtfock",
        molecule_name or (basis.molecule.name or basis.molecule.formula),
        cores,
        stats,
        outcome.executed_cost,
        finish,
        steals_avg=outcome.avg_steals_per_proc,
        queue_ops_avg=float(outcome.queue_ops.mean()),
        total_eris=costs.total_eris,
        ntasks=ns * ns,
        dead_ranks=list(outcome.dead_ranks),
        reexecuted_tasks=int(outcome.reexecuted_tasks),
        recoveries=len(outcome.recoveries),
        fault_overhead=fstate.overhead_summary() if fstate is not None else {},
    )


def simulate_nwchem(
    basis: BasisSet,
    screen: ScreeningMap,
    cores: int,
    config: MachineConfig = LONESTAR,
    costs: TaskCosts | None = None,
    molecule_name: str = "",
) -> FockSimResult:
    """Simulate NWChem's algorithm: one process per core, central counter."""
    if cores < 1:
        raise ValueError("cores must be >= 1")
    nproc = cores
    if costs is None:
        costs = quartet_cost_matrix(screen)
    arrays = build_nwchem_task_arrays(
        screen,
        total_eris=costs.total_eris,
        t_int=config.t_int_nwchem,
        task_overhead=config.task_overhead,
        element_size=config.element_size,
    )
    stats = CommStats(nproc, config)

    def cost_of(tid: int) -> float:
        return float(arrays.cost[tid])

    def comm_of(proc: int, tid: int) -> None:
        nbytes = float(arrays.comm_bytes[tid])
        ncalls = int(arrays.comm_calls[tid])
        if ncalls:
            stats.charge_comm(
                proc, nbytes, ncalls=ncalls, remote=True, channel=CH_TASK_GET
            )

    with get_profiler().phase(PHASE_SIM_LOOP):
        outcome = run_centralized(
            list(range(arrays.ntasks)), nproc, stats, cost_of, comm_of=comm_of
        )
    return _finalize(
        "nwchem",
        molecule_name or (basis.molecule.name or basis.molecule.formula),
        cores,
        stats,
        outcome.executed_cost,
        outcome.finish_time,
        counter_accesses=outcome.counter_accesses,
        total_eris=costs.total_eris,
        ntasks=arrays.ntasks,
    )
