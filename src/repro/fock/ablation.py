"""Ablation studies over the paper's design choices.

The paper motivates three mechanisms -- the initial static partition,
the spatial shell reordering, and the work-stealing scheduler -- and its
conclusion names "improved reordering schemes" and "smarter scheduling"
as future work.  This module isolates each choice so its contribution can
be measured independently:

* :func:`reordering_ablation` -- none / natural-cell / Hilbert-cell
  ordering vs. communication footprint and simulated time;
* :func:`stealing_ablation` -- scheduler on/off and steal-fraction sweep
  vs. load balance and makespan;
* :func:`granularity_ablation` -- shell-pair tasks vs. coarser
  row-block tasks (interpolating toward NWChem-style coarse tasks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.fock.cost import quartet_cost_matrix
from repro.fock.partition import StaticPartition
from repro.fock.prefetch import block_footprint
from repro.fock.reorder import bandwidth_of, reorder_basis
from repro.fock.screening_map import ScreeningMap
from repro.fock.simulate import simulate_gtfock
from repro.fock.stealing import run_work_stealing
from repro.integrals.schwarz import schwarz_model
from repro.runtime.machine import LONESTAR, MachineConfig


@dataclass
class AblationRow:
    label: str
    metrics: dict

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        vals = ", ".join(f"{k}={v:.4g}" for k, v in self.metrics.items())
        return f"{self.label}: {vals}"


def reordering_ablation(
    basis: BasisSet,
    tau: float = 1e-10,
    cores: int = 768,
    config: MachineConfig = LONESTAR,
    cell_size: float = 5.0,
) -> list[AblationRow]:
    """Compare shell orderings by footprint, bandwidth, and simulated time.

    ``basis`` should be in an arbitrary (e.g. scrambled) order so the
    orderings have something to fix.
    """
    rows = []
    variants = {
        "none": basis,
        "natural": reorder_basis(basis, cell_size, "natural"),
        "hilbert": reorder_basis(basis, cell_size, "hilbert"),
    }
    for label, b in variants.items():
        screen = ScreeningMap(b, schwarz_model(b), tau)
        costs = quartet_cost_matrix(screen)
        nproc = max(1, cores // config.cores_per_node)
        part = StaticPartition.build(b.nshells, nproc)
        avg_fp = float(
            np.mean(
                [
                    block_footprint(screen, part.task_block(p)).elements
                    for p in range(nproc)
                ]
            )
        )
        sim = simulate_gtfock(b, screen, cores, config=config, costs=costs)
        rows.append(
            AblationRow(
                label,
                {
                    "bandwidth": bandwidth_of(screen.significant),
                    "avg_footprint_elements": avg_fp,
                    "comm_mb_per_proc": sim.comm_mb_per_proc,
                    "t_fock": sim.t_fock_max,
                },
            )
        )
    return rows


def stealing_ablation(
    basis: BasisSet,
    screen: ScreeningMap,
    cores: int = 1944,
    config: MachineConfig = LONESTAR,
    fractions: tuple[float, ...] = (0.25, 0.5, 1.0),
) -> list[AblationRow]:
    """Scheduler on/off and steal-fraction sweep."""
    costs = quartet_cost_matrix(screen)
    rows = [
        AblationRow(
            "no-stealing",
            _sim_metrics(
                simulate_gtfock(
                    basis, screen, cores, config=config, costs=costs,
                    enable_stealing=False,
                )
            ),
        )
    ]
    for frac in fractions:
        nproc = max(1, cores // config.cores_per_node)
        part = StaticPartition.build(basis.nshells, nproc)
        ns = basis.nshells
        t_task = config.t_int_gtfock / config.cores_per_node
        eris = costs.eris.ravel()
        queues = []
        for p in range(nproc):
            blk = part.task_block(p)
            codes = (
                np.arange(blk.row_lo, blk.row_hi)[:, None] * ns
                + np.arange(blk.col_lo, blk.col_hi)[None, :]
            ).ravel()
            queues.append(codes.tolist())
        out = run_work_stealing(
            queues,
            lambda c: float(eris[c]) * t_task + config.task_overhead,
            (part.prow, part.pcol),
            steal_fraction=frac,
        )
        rows.append(
            AblationRow(
                f"steal-{frac:g}",
                {
                    "makespan": out.makespan,
                    "load_balance": out.load_balance_ratio(),
                    "victims_per_proc": out.avg_steals_per_proc,
                },
            )
        )
    return rows


def granularity_ablation(
    basis: BasisSet,
    screen: ScreeningMap,
    cores: int = 1944,
    config: MachineConfig = LONESTAR,
    row_groups: tuple[int, ...] = (1, 4, 16),
) -> list[AblationRow]:
    """Coarsen tasks by grouping ``g`` consecutive task-grid rows.

    ``g = 1`` is the paper's shell-pair granularity; larger g emulates
    coarse tasks (fewer, bigger) and shows the load-balance cost the
    paper attributes to NWChem's 5-atom-quartet choice.
    """
    costs = quartet_cost_matrix(screen)
    nproc = max(1, cores // config.cores_per_node)
    part = StaticPartition.build(basis.nshells, nproc)
    t_task = config.t_int_gtfock / config.cores_per_node
    eris = costs.eris
    rows = []
    for g in row_groups:
        queues = []
        for p in range(nproc):
            blk = part.task_block(p)
            tasks = []
            for r0 in range(blk.row_lo, blk.row_hi, g):
                r1 = min(r0 + g, blk.row_hi)
                for c0 in range(blk.col_lo, blk.col_hi, g):
                    c1 = min(c0 + g, blk.col_hi)
                    tasks.append(float(eris[r0:r1, c0:c1].sum()) * t_task)
            queues.append(tasks)
        out = run_work_stealing(queues, lambda c: c, (part.prow, part.pcol))
        rows.append(
            AblationRow(
                f"group-{g}x{g}",
                {
                    "ntasks": sum(len(q) for q in queues),
                    "makespan": out.makespan,
                    "load_balance": out.load_balance_ratio(),
                },
            )
        )
    return rows


def _sim_metrics(sim) -> dict:
    return {
        "makespan": sim.t_fock_max,
        "load_balance": sim.load_balance,
        "victims_per_proc": sim.steals_avg,
    }
