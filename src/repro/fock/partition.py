"""Initial static 2-D task partitioning (Sec III-C).

The ``nshells x nshells`` grid of shell-pair tasks is cut into
``prow x pcol`` rectangular blocks; process ``p_ij`` initially owns the
tasks ``(i*nbr : (i+1)*nbr - 1, :  |  j*nbc : (j+1)*nbc - 1, :)``.
The same boundaries distribute the F and D matrices 2-D-blocked by shell
blocks -- which is exactly the layout SUMMA purification wants afterwards
(Sec IV-E).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.runtime.ga import block_bounds, grid_shape


@dataclass(frozen=True)
class TaskBlock:
    """A rectangular block of shell-pair tasks."""

    row_lo: int
    row_hi: int  # exclusive
    col_lo: int
    col_hi: int  # exclusive

    @property
    def ntasks(self) -> int:
        return (self.row_hi - self.row_lo) * (self.col_hi - self.col_lo)

    def tasks(self) -> list[tuple[int, int]]:
        """All (M, N) shell-pair tasks in this block, row major."""
        return [
            (m, n)
            for m in range(self.row_lo, self.row_hi)
            for n in range(self.col_lo, self.col_hi)
        ]

    def rows(self) -> np.ndarray:
        return np.arange(self.row_lo, self.row_hi)

    def cols(self) -> np.ndarray:
        return np.arange(self.col_lo, self.col_hi)


@dataclass
class StaticPartition:
    """The static 2-D partition of tasks and matrices over a process grid."""

    nshells: int
    prow: int
    pcol: int
    #: shell-index boundaries, len prow+1 / pcol+1
    row_shell_bounds: np.ndarray
    col_shell_bounds: np.ndarray

    @classmethod
    def build(cls, nshells: int, nproc: int) -> "StaticPartition":
        """Near-square grid with even shell-block boundaries."""
        prow, pcol = grid_shape(nproc)
        if nshells < max(prow, pcol):
            raise ValueError(
                f"{nshells} shells cannot be split over a {prow}x{pcol} grid"
            )
        return cls(
            nshells=nshells,
            prow=prow,
            pcol=pcol,
            row_shell_bounds=block_bounds(nshells, prow),
            col_shell_bounds=block_bounds(nshells, pcol),
        )

    @property
    def nproc(self) -> int:
        return self.prow * self.pcol

    def proc_id(self, gi: int, gj: int) -> int:
        return gi * self.pcol + gj

    def grid_coords(self, proc: int) -> tuple[int, int]:
        return divmod(proc, self.pcol)

    def task_block(self, proc: int) -> TaskBlock:
        """The task block initially assigned to a process."""
        gi, gj = self.grid_coords(proc)
        return TaskBlock(
            row_lo=int(self.row_shell_bounds[gi]),
            row_hi=int(self.row_shell_bounds[gi + 1]),
            col_lo=int(self.col_shell_bounds[gj]),
            col_hi=int(self.col_shell_bounds[gj + 1]),
        )

    def owner_of_task(self, m: int, n: int) -> int:
        """Linear process id initially owning task (M, N)."""
        gi = int(np.searchsorted(self.row_shell_bounds, m, side="right")) - 1
        gj = int(np.searchsorted(self.col_shell_bounds, n, side="right")) - 1
        return self.proc_id(gi, gj)

    def matrix_bounds(self, basis: BasisSet) -> tuple[np.ndarray, np.ndarray]:
        """Function-index boundaries for distributing F/D on this grid.

        Process ``p_ij`` owns the F and D shell blocks of its task block's
        shell-pair indices (Sec III-E).
        """
        offs = basis.offsets
        rb = offs[self.row_shell_bounds]
        cb = offs[self.col_shell_bounds]
        return rb.astype(int), cb.astype(int)

    def all_task_blocks(self) -> list[TaskBlock]:
        return [self.task_block(p) for p in range(self.nproc)]
