"""Per-task work estimation: the task cost matrix (Sec III-B/III-G).

``quartet_cost_matrix`` computes, for every shell-pair task ``(M, N)``,

* the number of shell quartets the task actually computes
  (parity-unique + Cauchy-Schwarz screened), and
* the number of ERIs those quartets contain (what ``t_int`` multiplies).

This is the quantity the timing-level simulation charges per task, and
summing it gives the exact total work both algorithms share.

The computation is fully vectorized: for each task row M, the surviving
(P, Q) count factorizes as  ``#{(P,Q) : sigma(M,P) * sigma(N,Q) > tau}``
with P restricted to M's parity-allowed set and Q to N's.  Sorting M's
values once and binary-searching all of row N's thresholds gives
O(nshells^2 * B) total work in NumPy primitives instead of the O(n^2 B^2)
quartet loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.chem.basis.basisset import BasisSet
from repro.fock.screening_map import ScreeningMap


@dataclass
class TaskCosts:
    """Cost matrices over the task grid."""

    #: surviving shell quartets per task, shape (nshells, nshells)
    quartets: np.ndarray
    #: ERIs per task (quartets weighted by their function counts)
    eris: np.ndarray

    @property
    def total_quartets(self) -> float:
        return float(self.quartets.sum())

    @property
    def total_eris(self) -> float:
        return float(self.eris.sum())

    def block_sum(self, rows: np.ndarray, cols: np.ndarray) -> float:
        """Total ERIs of a rectangular task block."""
        return float(self.eris[np.ix_(rows, cols)].sum())


def parity_allowed(m: int, nshells: int) -> np.ndarray:
    """Boolean mask over P of SymmetryCheck(m, P) (see fock.symmetry)."""
    p = np.arange(nshells)
    mask = np.empty(nshells, dtype=bool)
    below = p < m
    above = p > m
    mask[below] = (m + p[below]) % 2 == 0
    mask[above] = (m + p[above]) % 2 == 1
    mask[m] = True
    return mask


def quartet_cost_matrix(screen: ScreeningMap, exact_diagonal: bool = False) -> TaskCosts:
    """Cost matrices for every task under parity uniqueness + screening.

    Diagonal tasks (M == N) carry the extra ``P <= Q`` tie-break; they are
    approximated as half the unrestricted count unless
    ``exact_diagonal=True`` (direct enumeration; only worth it for small
    systems and tests).  There are only nshells of them among nshells^2
    tasks, so the approximation is irrelevant for timing.
    """
    ns = screen.nshells
    sigma = screen.sigma
    tau = screen.tau
    sizes = screen.basis.shell_sizes().astype(float)
    sig = screen.significant

    # Per row M: significant, parity-allowed partners and their values.
    vals: list[np.ndarray] = []
    weights: list[np.ndarray] = []
    for m in range(ns):
        mask = parity_allowed(m, ns) & sig[m] & (sigma[m] > 1e-300)
        v = sigma[m, mask]
        order = np.argsort(v)[::-1]
        v = v[order]
        w = (sizes[m] * sizes[mask][order])
        vals.append(v)
        weights.append(w)

    # Flat concatenation of every row's (value, weight) lists for the
    # ket side, with segment boundaries for per-row reduction.
    seg_len = np.array([v.size for v in vals], dtype=np.int64)
    seg_start = np.concatenate([[0], np.cumsum(seg_len)])
    flat_vals = np.concatenate(vals) if ns else np.empty(0)
    flat_w = np.concatenate(weights) if ns else np.empty(0)
    # reduceat only over non-empty segments (empty rows contribute zero)
    nonempty_rows = np.flatnonzero(seg_len > 0)
    nonempty_starts = seg_start[:-1][nonempty_rows]

    quartets = np.zeros((ns, ns))
    eris = np.zeros((ns, ns))
    with np.errstate(divide="ignore"):
        flat_thresh = tau / flat_vals  # threshold on the bra value
    for m in range(ns):
        v = vals[m]
        if v.size == 0:
            continue
        w = weights[m]
        prefix_cnt = np.arange(1, v.size + 1, dtype=float)
        prefix_w = np.cumsum(w)
        # v is sorted descending: count of v > t  ==  searchsorted(-v, -t, 'left')
        k = np.searchsorted(-v, -flat_thresh, side="left")
        cnt_contrib = np.where(k > 0, prefix_cnt[np.maximum(k - 1, 0)], 0.0)
        w_contrib = np.where(k > 0, prefix_w[np.maximum(k - 1, 0)], 0.0)
        if flat_vals.size and nonempty_rows.size:
            quartets[m, nonempty_rows] = np.add.reduceat(
                cnt_contrib, nonempty_starts
            )
            eris[m, nonempty_rows] = np.add.reduceat(
                w_contrib * flat_w, nonempty_starts
            )

    # task-level gate: tasks failing SymmetryCheck(M, N) compute nothing
    gate = np.array([parity_allowed(m, ns) for m in range(ns)])
    quartets *= gate
    eris *= gate

    # diagonal tasks: P <= Q tie-break keeps roughly half the quartets
    if exact_diagonal:
        from repro.fock.tasks import enumerate_task_quartets

        for m in range(ns):
            cnt = 0.0
            eri = 0.0
            for (_mm, p, _nn, q) in enumerate_task_quartets(screen, m, m):
                cnt += 1.0
                eri += sizes[m] * sizes[p] * sizes[m] * sizes[q]
            quartets[m, m] = cnt
            eris[m, m] = eri
    else:
        quartets[np.diag_indices(ns)] *= 0.5
        eris[np.diag_indices(ns)] *= 0.5

    return TaskCosts(quartets=quartets, eris=eris)


def total_unique_work(screen: ScreeningMap) -> tuple[float, float]:
    """(total unique quartets, total ERIs) over the whole task grid."""
    costs = quartet_cost_matrix(screen)
    return costs.total_quartets, costs.total_eris


def cost_matrix_for(
    basis: BasisSet, sigma: np.ndarray, tau: float
) -> TaskCosts:
    """Convenience wrapper building the ScreeningMap internally."""
    return quartet_cost_matrix(ScreeningMap(basis, sigma, tau))
