"""Vectorized work/communication estimation for NWChem-style tasks.

Paper-scale molecules have far too many atom quartets for per-shell-
quartet Python enumeration, so the timing simulation aggregates at the
atom-pair level:

* every significant canonical atom pair (I >= J) carries a small
  *bucket summary* of its shell-pair Schwarz values (value quantiles with
  summed ERI weights);
* the ERI count of an atom quartet (IJ|KL) is the bucket-product count
  ``sum_{b1,b2} w1 w2 [v1 v2 > tau]``;
* all task costs are finally rescaled so their total matches the *exact*
  total unique ERI work from :func:`repro.fock.cost.quartet_cost_matrix`
  -- the bucket approximation shapes only the distribution, never the
  totals that Tables III/IV rest on.

Tasks follow Algorithm 2's granularity: chunks of 5 consecutive atom
quartets, enumerated as canonical significant (K, L) pairs with pair id
<= the task's own (I, J) pair (the "unique triplets + strided L loop"
structure of the paper, expressed over the significant-pair list).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fock.screening_map import ScreeningMap
from repro.fock.tasks import atom_sigma


@dataclass
class NWChemTaskArrays:
    """Flat arrays describing every NWChem task for the timing simulation."""

    #: per-task estimated compute seconds (already includes t_int)
    cost: np.ndarray
    #: per-task communication volume in bytes (D gets + F accs)
    comm_bytes: np.ndarray
    #: per-task number of one-sided calls
    comm_calls: np.ndarray
    #: total tasks
    ntasks: int
    #: exact total ERIs the costs were normalized to
    total_eris: float


def _atom_pair_buckets(
    screen: ScreeningMap, pairs: np.ndarray, nbuckets: int
) -> tuple[np.ndarray, np.ndarray]:
    """Bucket summaries (values, weights) per canonical atom pair.

    Values are per-bucket maxima (conservative for the screening test),
    weights are summed ERI weights ``s_M s_N`` over the bucket's shell
    pairs.
    """
    basis = screen.basis
    sizes = basis.shell_sizes().astype(float)
    groups = basis.atom_shell_lists()
    sigma = screen.sigma
    npairs = len(pairs)
    v = np.zeros((npairs, nbuckets))
    w = np.zeros((npairs, nbuckets))
    for idx, (a, b) in enumerate(pairs):
        sa = np.asarray(groups[a], dtype=int)
        sb = np.asarray(groups[b], dtype=int)
        vals = sigma[np.ix_(sa, sb)].ravel()
        wts = np.outer(sizes[sa], sizes[sb]).ravel()
        order = np.argsort(vals)[::-1]
        vals, wts = vals[order], wts[order]
        cuts = np.linspace(0, vals.size, nbuckets + 1).astype(int)
        for b_i in range(nbuckets):
            lo, hi = cuts[b_i], cuts[b_i + 1]
            if hi > lo:
                v[idx, b_i] = vals[lo]  # bucket max (descending order)
                w[idx, b_i] = wts[lo:hi].sum()
    return v, w


def build_nwchem_task_arrays(
    screen: ScreeningMap,
    total_eris: float,
    t_int: float,
    task_overhead: float,
    chunk: int = 5,
    nbuckets: int = 4,
    element_size: int = 8,
) -> NWChemTaskArrays:
    """All NWChem tasks with vectorized cost/communication estimates.

    Parameters
    ----------
    screen:
        Screening structure of the (atom-ordered) basis.
    total_eris:
        Exact total unique ERI count to normalize task costs to.
    t_int:
        Seconds per ERI for this engine (Table V).
    task_overhead:
        Fixed per-task bookkeeping seconds.
    """
    basis = screen.basis
    sig_at = atom_sigma(screen)
    natoms = sig_at.shape[0]
    tau = screen.tau

    # canonical significant atom pairs, ordered (the global task order)
    iu, ju = np.tril_indices(natoms)  # I >= J
    vals_at = sig_at[iu, ju]
    keep = vals_at * float(sig_at.max()) > tau
    pairs = np.stack([iu[keep], ju[keep]], axis=1)
    pvals = vals_at[keep]
    npairs = len(pairs)
    if npairs == 0:
        return NWChemTaskArrays(
            cost=np.zeros(0),
            comm_bytes=np.zeros(0),
            comm_calls=np.zeros(0, dtype=np.int64),
            ntasks=0,
            total_eris=total_eris,
        )

    v, w = _atom_pair_buckets(screen, pairs, nbuckets)

    # atom function sizes for communication volumes
    offs = basis.offsets
    atom_of = basis.atom_of_shell
    fsizes = np.zeros(natoms)
    for s in range(basis.nshells):
        fsizes[atom_of[s]] += offs[s + 1] - offs[s]

    # tasks: for bra pair index i (in canonical order), ket pair indices
    # 0..i chunked by `chunk`.  Expand all (bra, ket) rows.
    bra_rows: list[np.ndarray] = []
    ket_rows: list[np.ndarray] = []
    task_of_row: list[np.ndarray] = []
    task_base = 0
    ntasks = 0
    for i in range(npairs):
        nket = i + 1
        ntask_i = (nket + chunk - 1) // chunk
        kets = np.arange(nket)
        bra_rows.append(np.full(nket, i, dtype=np.int64))
        ket_rows.append(kets)
        task_of_row.append(task_base + kets // chunk)
        task_base += ntask_i
        ntasks += ntask_i
    bra = np.concatenate(bra_rows)
    ket = np.concatenate(ket_rows)
    row_task = np.concatenate(task_of_row)

    # atom-level screening of each quartet row
    survive = pvals[bra] * pvals[ket] > tau

    # bucket-product ERI estimate per surviving row, chunked for memory
    cost_rows = np.zeros(bra.size)
    idx = np.flatnonzero(survive)
    step = 200_000
    for s0 in range(0, idx.size, step):
        sel = idx[s0 : s0 + step]
        vb = v[bra[sel]][:, :, None] * v[ket[sel]][:, None, :]  # careful: see below
        wb = w[bra[sel]][:, :, None] * w[ket[sel]][:, None, :]
        cost_rows[sel] = np.sum(wb * (vb > tau), axis=(1, 2))

    # communication: 6 D-block gets + 6 F-block accs per surviving quartet
    fi, fj = fsizes[pairs[:, 0]], fsizes[pairs[:, 1]]
    blk6 = (
        fi[bra] * fj[bra]
        + fi[ket] * fj[ket]
        + fi[bra] * fi[ket]
        + fj[bra] * fj[ket]
        + fi[bra] * fj[ket]
        + fj[bra] * fi[ket]
    )
    bytes_rows = np.where(survive, 2.0 * blk6 * element_size, 0.0)
    calls_rows = np.where(survive, 12, 0)

    cost = np.bincount(row_task, weights=cost_rows, minlength=ntasks)
    comm_bytes = np.bincount(row_task, weights=bytes_rows, minlength=ntasks)
    comm_calls = np.bincount(row_task, weights=calls_rows, minlength=ntasks).astype(
        np.int64
    )

    # normalize to the exact total ERI work, then convert to seconds
    est_total = float(cost.sum())
    scale = (total_eris / est_total) if est_total > 0 else 0.0
    cost = cost * scale * t_int + task_overhead
    return NWChemTaskArrays(
        cost=cost,
        comm_bytes=comm_bytes,
        comm_calls=comm_calls,
        ntasks=ntasks,
        total_eris=total_eris,
    )
