"""Work-stealing distributed scheduler simulation (Sec III-F).

Each process drains its own task queue; when empty it scans the process
grid row-wise (starting from its own row), steals a block of tasks --
half of the victim's remaining queue -- copies the victim's D buffer
(that copy is the ``(1+s)`` factor of Eq 9), and continues.  Stolen-F
buffers are accumulated back to the victim when the thief moves on.

The simulation is event-driven with O(p + steals) events: a process's
whole queue is one event, split lazily when a thief interrupts it.  The
``on_task`` callback makes the same machinery drive both timing-only runs
and numeric builds (where the callback computes real ERIs into the
executing process's buffers).

Fault tolerance (``faults=``): the scheduler honors a
:class:`~repro.runtime.faults.FaultState` -- stragglers execute their
batches slower, completion events can be delivered late, and a rank can
die at a virtual time.  Death is survivable by construction: tasks are
idempotent ERI batches accumulated into rank-local F buffers and flushed
once, so a dead rank's queued *and* executed-but-unflushed tasks simply
re-enter the pool (the orphan queue) and are re-executed by survivors.
Thieves detect a dead victim on probe (its queue is gone); idle ranks
adopt orphans before declaring themselves done, and a death that fires
after everyone drained wakes the earliest-idle survivor.  See
``docs/ROBUSTNESS.md``.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.obs import Tracer, get_tracer
from repro.obs.flight import CH_QUEUE, CH_STEAL_TASK
from repro.runtime.event import EventQueue
from repro.runtime.faults import FaultState
from repro.runtime.network import CommStats


@dataclass
class StealRecord:
    time: float
    thief: int
    victim: int
    ntasks: int


@dataclass
class RecoveryRecord:
    """A survivor adopting orphaned tasks of a dead rank."""

    time: float
    rank: int
    ntasks: int
    #: how many of the adopted tasks had already been executed (and lost)
    reexecuted: int


@dataclass
class StealingOutcome:
    """What the scheduler run produced."""

    #: wall-clock (virtual) completion time per process
    finish_time: np.ndarray
    #: pure compute seconds executed per process
    executed_cost: np.ndarray
    #: number of tasks executed per process
    executed_tasks: np.ndarray
    steals: list[StealRecord] = field(default_factory=list)
    #: per-process local queue accesses (atomic ops on local queues)
    queue_ops: np.ndarray | None = None
    #: ranks that died during the run (fault injection)
    dead_ranks: list[int] = field(default_factory=list)
    #: orphan adoptions by survivors (fault injection)
    recoveries: list[RecoveryRecord] = field(default_factory=list)
    #: tasks executed by a dead rank whose results were lost + re-executed
    reexecuted_tasks: int = 0
    #: per-rank task execution history (only kept under fault injection)
    executed_history: list[list[Any]] | None = None
    #: per-rank idle-blocked wait: time spent done-and-parked before being
    #: woken to adopt a dead rank's orphans (zero outside fault injection)
    blocked_time: np.ndarray | None = None
    #: per-rank base cost of the *initial* static-partition queue -- what
    #: each rank would compute with stealing disabled (the critical-path
    #: analyzer's steal-off what-if replays this)
    initial_cost: np.ndarray | None = None

    @property
    def makespan(self) -> float:
        return float(self.finish_time.max())

    @property
    def avg_steals_per_proc(self) -> float:
        """The paper's s: average number of *distinct* victims per process."""
        pairs = {(s.thief, s.victim) for s in self.steals}
        return len(pairs) / len(self.finish_time)

    def load_balance_ratio(self) -> float:
        """l = T_max / T_avg over per-process busy finish times (Table VIII)."""
        avg = float(self.finish_time.mean())
        return float(self.finish_time.max()) / avg if avg > 0 else 1.0


class _ProcState:
    __slots__ = ("tasks", "costs", "cum", "start", "active", "factor")

    def __init__(self) -> None:
        self.tasks: list[Any] = []
        self.costs: list[float] = []
        self.cum: list[float] = []
        self.start = 0.0
        self.active = False
        self.factor = 1.0

    def begin(
        self, tasks: list, costs: list[float], start: float, factor: float = 1.0
    ) -> float:
        """Start a batch; ``costs`` are *base* costs, ``factor`` is the
        executing rank's straggler slowdown (stolen tasks run at the
        thief's rate, not the victim's)."""
        self.tasks = tasks
        self.costs = costs
        self.cum = list(np.cumsum(costs) * factor) if costs else []
        self.start = start
        self.active = bool(tasks)
        self.factor = factor
        return start + (self.cum[-1] if self.cum else 0.0)

    def completed_by(self, t: float) -> int:
        """Number of queued tasks fully executed by time t."""
        if not self.active:
            return len(self.tasks)
        return bisect_right(self.cum, t - self.start + 1e-15)

    def stealable_after(self, t: float) -> int:
        """Index from which tasks can still be stolen at time t.

        The task in flight at time t cannot be stolen.
        """
        k = self.completed_by(t)
        return min(k + 1, len(self.tasks))


def victim_scan_order(proc: int, prow: int, pcol: int) -> list[int]:
    """Row-wise victim scan starting from the thief's own grid row."""
    gi, gj = divmod(proc, pcol)
    order = []
    for r in range(prow):
        row = (gi + r) % prow
        for c in range(pcol):
            col = (gj + c) % pcol if r == 0 else c
            p = row * pcol + col
            if p != proc:
                order.append(p)
    return order


_DEATH = "death"  # event-key marker for scheduled rank deaths


def run_work_stealing(
    queues: list[list[Any]],
    cost_of: Callable[[Any], float],
    grid: tuple[int, int],
    stats: CommStats | None = None,
    steal_cost: Callable[[int, int], float] | None = None,
    on_task: Callable[[int, Any], None] | None = None,
    on_steal: Callable[[int, int], None] | None = None,
    enable_stealing: bool = True,
    steal_fraction: float = 0.5,
    min_steal: int = 1,
    tracer: Tracer | None = None,
    faults: FaultState | None = None,
    rng: np.random.Generator | None = None,
    on_recover: Callable[[int, list[Any]], None] | None = None,
    event_observer: Callable[[str, float, Any], None] | None = None,
) -> StealingOutcome:
    """Simulate the work-stealing execution of per-process task queues.

    Parameters
    ----------
    queues:
        Initial task list per process (the static partition's blocks).
    cost_of:
        Virtual execution cost (seconds) of one task.
    grid:
        (prow, pcol) process grid shape; defines the victim scan order.
    stats:
        Optional accounting whose per-process clocks give each process's
        start time (e.g. after prefetch); finish times are written back.
    steal_cost:
        ``steal_cost(thief, victim) -> seconds`` charged to the thief per
        steal (D-buffer copy + queue atomics).  Zero if omitted.
    on_task:
        Invoked as ``on_task(executing_proc, task)`` for every task, once
        per *execution* -- under fault injection a task lost to a rank
        death is re-executed (and the callback re-fires) on a survivor.
    on_steal:
        Invoked as ``on_steal(thief, victim)`` at steal time -- numeric
        builds use it to copy the victim's local D buffer to the thief.
    enable_stealing:
        Switch stealing off to measure raw static-partition imbalance.
    min_steal:
        Do not bother stealing fewer than this many tasks: endgame
        single-task steals cost a D-buffer copy for near-zero work.
    tracer:
        Observability sink (defaults to the process-wide tracer).  When
        enabled, every executed task and batch becomes a virtual span on
        its rank's trace thread with *exact* scheduler times, and every
        steal / idle transition an instant event carrying victim, batch
        size, and the number of victim-queue probes scanned.
    faults:
        Activated fault plan: straggler slowdowns scale batch costs,
        delayed messages perturb completion events, and rank deaths
        orphan the dead rank's unflushed tasks back into the pool.
    rng:
        Seeded generator for steal tie-breaks: when given, each steal
        attempt scans a seeded permutation of the victim order instead
        of the fixed row-wise scan, making contention patterns
        reproducible from the seed (chaos runs pass the fault state's
        generator).
    on_recover:
        Invoked as ``on_recover(rank, tasks)`` when a survivor adopts
        orphaned tasks (numeric builds may prefetch the tasks' D blocks
        here; the GTFock build instead falls back to on-demand fetches).
    event_observer:
        Forwarded to the :class:`EventQueue`; sees every schedule /
        cancel / pop in resolution order (dependency capture).
    """
    if tracer is None:
        tracer = get_tracer()
    prow, pcol = grid
    nproc = prow * pcol
    if len(queues) != nproc:
        raise ValueError(f"{len(queues)} queues for a {prow}x{pcol} grid")
    if not 0.0 < steal_fraction <= 1.0:
        raise ValueError("steal_fraction must be in (0, 1]")

    states = [_ProcState() for _ in range(nproc)]
    events = EventQueue(
        perturb=faults.perturb_event if faults is not None else None,
        observer=event_observer,
    )
    finish = np.zeros(nproc)
    executed_cost = np.zeros(nproc)
    blocked_time = np.zeros(nproc)
    initial_cost = np.zeros(nproc)
    executed_tasks = np.zeros(nproc, dtype=np.int64)
    queue_ops = np.zeros(nproc, dtype=np.int64)
    steals: list[StealRecord] = []
    scan_orders = [victim_scan_order(p, prow, pcol) for p in range(nproc)]
    done = np.zeros(nproc, dtype=bool)
    dead = np.zeros(nproc, dtype=bool)

    track_faults = faults is not None
    #: per-rank (task, base_cost) execution history, for death recovery
    history: list[list[tuple[Any, float]]] = [[] for _ in range(nproc)]
    #: (task, base_cost, was_executed) blocks orphaned by rank deaths
    orphans: list[tuple[Any, float, bool]] = []
    recoveries: list[RecoveryRecord] = []
    reexecuted = 0

    def factor_of(p: int) -> float:
        return faults.compute_factor(p) if faults is not None else 1.0

    for p in range(nproc):
        start = float(stats.clock[p]) if stats is not None else 0.0
        costs = [cost_of(t) for t in queues[p]]
        initial_cost[p] = float(sum(costs))
        end = states[p].begin(list(queues[p]), costs, start, factor_of(p))
        queue_ops[p] += 1  # one atomic enqueue of the whole initial block
        if stats is not None:
            stats.flight.record_op(p, CH_QUEUE)
        events.schedule(end, p)
    if faults is not None:
        for p, t_death in faults.plan.deaths.items():
            if 0 <= p < nproc:
                events.schedule(float(t_death), (_DEATH, p))

    def commit(proc: int, tasks: list[Any], costs: list[float], factor: float) -> None:
        executed_cost[proc] += float(sum(costs)) * factor
        executed_tasks[proc] += len(tasks)
        if track_faults:
            history[proc].extend(zip(tasks, costs))
        if on_task is not None:
            for t in tasks:
                on_task(proc, t)

    def adopt_orphans(p: int, t: float) -> bool:
        """Rank ``p`` takes a block from the orphan pool at time ``t``."""
        nonlocal reexecuted
        if not orphans or dead[p]:
            return False
        n = max(1, int(len(orphans) * steal_fraction))
        take = orphans[-n:]
        del orphans[-n:]
        tasks = [x[0] for x in take]
        costs = [x[1] for x in take]
        nre = sum(1 for x in take if x[2])
        reexecuted += nre
        queue_ops[p] += 1  # atomic pop from the recovery pool
        if stats is not None:
            stats.flight.record_op(p, CH_STEAL_TASK)
        if on_recover is not None:
            on_recover(p, tasks)
        if done[p] and t > finish[p]:
            # this rank had declared itself done at finish[p] and sat
            # idle until the death woke it: a genuine cross-rank blocked
            # wait (the only start-time dependency between ranks)
            blocked_time[p] += t - finish[p]
            if tracer.enabled:
                tracer.virtual_span(
                    "blocked", p, float(finish[p]), t, cat="sched"
                )
        done[p] = False
        end = states[p].begin(tasks, costs, t, factor_of(p))
        events.schedule(end, p)
        recoveries.append(RecoveryRecord(t, p, len(take), nre))
        tracer.virtual_instant(
            "recover", p, t, cat="sched", ntasks=len(take), reexecuted=nre
        )
        return True

    def kill(p: int, t: float) -> None:
        """Execute rank ``p``'s death at virtual time ``t``."""
        st = states[p]
        dead[p] = True
        # everything this rank executed since its last (never-happened)
        # flush is lost with its memory; queued work is lost with it too
        lost: list[tuple[Any, float, bool]] = [
            (task, cost, True) for task, cost in history[p]
        ]
        history[p].clear()
        if st.active:
            k = st.completed_by(t)
            for i, (task, cost) in enumerate(zip(st.tasks, st.costs)):
                lost.append((task, cost, i < k))
            # the rank did burn real time on the partial batch
            burned = min(max(t - st.start, 0.0), st.cum[-1] if st.cum else 0.0)
            executed_cost[p] += burned
            st.active = False
            st.tasks, st.costs, st.cum = [], [], []
        events.cancel(p)
        if not done[p]:
            finish[p] = t
            done[p] = True
        orphans.extend(lost)
        tracer.virtual_instant(
            "death", p, t, cat="sched", orphaned=len(lost)
        )
        # wake idle survivors: a death after the pool drained would
        # otherwise strand its orphans forever
        for q in sorted(
            (q for q in range(nproc) if done[q] and not dead[q]),
            key=lambda q: finish[q],
        ):
            if not orphans:
                break
            adopt_orphans(q, max(t, float(finish[q])))

    while True:
        ev = events.pop()
        if ev is None:
            break
        t, key = ev
        if isinstance(key, tuple) and key[0] == _DEATH:
            kill(key[1], t)
            continue
        p = key
        st = states[p]
        # the whole (possibly shrunk) batch has run to completion
        commit(p, st.tasks, st.costs, st.factor)
        if tracer.enabled and st.tasks:
            tracer.virtual_span(
                "batch", p, st.start, t, cat="sched", ntasks=len(st.tasks)
            )
            prev = 0.0
            for task, cum in zip(st.tasks, st.cum):
                end = float(cum)
                tracer.virtual_span(
                    "task", p, st.start + prev, st.start + end,
                    cat="task", task=str(task),
                )
                prev = end
        st.active = False
        st.tasks, st.costs, st.cum = [], [], []

        # orphaned work outranks stealing: it is the only copy left
        if adopt_orphans(p, t):
            continue

        stolen = False
        probes = 0
        if enable_stealing:
            order = scan_orders[p]
            if rng is not None:
                order = [order[i] for i in rng.permutation(len(order))]
            for victim in order:
                queue_ops[p] += 1  # probe the victim's queue
                if stats is not None:
                    stats.flight.record_op(p, CH_STEAL_TASK)
                probes += 1
                vs = states[victim]
                if dead[victim] or not vs.active:
                    # a dead victim's queue no longer exists: the probe
                    # comes back empty and the thief moves on
                    continue
                lo = vs.stealable_after(t)
                avail = len(vs.tasks) - lo
                if avail < max(1, min_steal):
                    continue
                nsteal = max(1, int(avail * steal_fraction))
                cut = len(vs.tasks) - nsteal
                stolen_tasks = vs.tasks[cut:]
                stolen_costs = vs.costs[cut:]
                # shrink the victim in place and reschedule its finish
                vs.tasks = vs.tasks[:cut]
                vs.costs = vs.costs[:cut]
                vs.cum = vs.cum[:cut]
                queue_ops[victim] += 1  # atomic update of victim queue
                if stats is not None:
                    stats.flight.record_op(victim, CH_STEAL_TASK)
                new_victim_end = vs.start + (vs.cum[-1] if vs.cum else 0.0)
                events.schedule(max(new_victim_end, t), victim)
                if on_steal is not None:
                    on_steal(p, victim)
                # the thief pays for copying the victim's D buffer
                dt = steal_cost(p, victim) if steal_cost is not None else 0.0
                start = t + dt
                if stats is not None and dt > 0:
                    stats.comm_time[p] += dt
                if tracer.enabled and dt > 0:
                    tracer.virtual_span(
                        "steal_copy", p, t, start, cat="comm", victim=victim
                    )
                end = states[p].begin(stolen_tasks, stolen_costs, start, factor_of(p))
                events.schedule(end, p)
                steals.append(StealRecord(t, p, victim, len(stolen_tasks)))
                tracer.virtual_instant(
                    "steal", p, t, cat="sched",
                    victim=victim, ntasks=len(stolen_tasks), scans=probes,
                )
                stolen = True
                break
        if not stolen:
            done[p] = True
            finish[p] = t
            if tracer.enabled and enable_stealing:
                tracer.virtual_instant("idle", p, t, cat="sched", scans=probes)

    if stats is not None:
        stats.clock[:] = np.maximum(stats.clock, finish)
        stats.comp_time += executed_cost

    return StealingOutcome(
        finish_time=finish,
        executed_cost=executed_cost,
        executed_tasks=executed_tasks,
        steals=steals,
        queue_ops=queue_ops,
        dead_ranks=sorted(int(p) for p in np.flatnonzero(dead)),
        recoveries=recoveries,
        reexecuted_tasks=reexecuted,
        executed_history=history if track_faults else None,
        blocked_time=blocked_time,
        initial_cost=initial_cost,
    )
