"""NWChem's Fock-build algorithm, numeric mode (Sec II-F, Algorithm 2).

The baseline the paper compares against:

* F and D distributed in **block-row** fashion by atoms over all
  processes;
* tasks of **5 atom quartets** dispensed by a **centralized** dynamic
  scheduler (one shared atomic counter, one ``GetTask`` per task);
* per task: fetch the 6 atom blocks of D it needs, compute its unique
  screened shell quartets, accumulate the 6 atom blocks of F.

No prefetching is possible because task placement is unknown a priori
(the paper's second criticism), so every task pays its own communication.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fock.centralized import CentralizedOutcome, run_centralized
from repro.fock.screening_map import ScreeningMap
from repro.fock.tasks import NWChemTask, atom_quartet_shell_quartets, nwchem_task_list
from repro.integrals.engine import ERIEngine
from repro.obs.flight import CH_FOCK_ACC, CH_TASK_GET
from repro.runtime.ga import GlobalArray, block_bounds
from repro.runtime.machine import LONESTAR, MachineConfig
from repro.runtime.network import CommStats
from repro.scf.fock import orbit_images


@dataclass
class NWChemBuildResult:
    fock: np.ndarray
    stats: CommStats
    outcome: CentralizedOutcome
    screen: ScreeningMap
    ntasks: int


def atom_function_ranges(basis) -> list[tuple[int, int]]:
    """Function-index range [lo, hi) per atom (atom-ordered bases only)."""
    atom_of = basis.atom_of_shell
    if np.any(np.diff(atom_of) < 0):
        raise ValueError(
            "NWChem's block-row-by-atom distribution requires the "
            "atom-ordered (unpermuted) basis"
        )
    natoms = basis.molecule.natoms
    offs = basis.offsets
    ranges: list[tuple[int, int]] = []
    for a in range(natoms):
        sh = np.flatnonzero(atom_of == a)
        if sh.size == 0:
            raise ValueError(f"atom {a} has no shells")
        ranges.append((int(offs[sh[0]]), int(offs[sh[-1] + 1])))
    return ranges


def nwchem_build(
    engine: ERIEngine,
    hcore: np.ndarray,
    density: np.ndarray,
    nproc: int,
    tau: float = 1e-11,
    config: MachineConfig = LONESTAR,
    screen: ScreeningMap | None = None,
    chunk: int = 5,
) -> NWChemBuildResult:
    """Numeric NWChem-style Fock construction on ``nproc`` processes."""
    basis = engine.basis
    nbf = basis.nbf
    if hcore.shape != (nbf, nbf) or density.shape != (nbf, nbf):
        raise ValueError("hcore/density shape does not match the basis")
    if screen is None:
        screen = ScreeningMap(basis, engine.schwarz(), tau)
    if nproc > nbf:
        raise ValueError(f"cannot block-row distribute {nbf} rows over {nproc} procs")

    stats = CommStats(nproc, config)
    # block-row distribution: rows cut evenly, columns undivided
    rb = block_bounds(nbf, nproc)
    cb = np.array([0, nbf])
    ga_d = GlobalArray(stats, nbf, nbf, rb, cb)
    ga_d.load(density)
    ga_g = GlobalArray(stats, nbf, nbf, rb, cb)

    tasks = nwchem_task_list(screen, chunk=chunk)
    shells_of_atom = basis.atom_shell_lists()
    aranges = atom_function_ranges(basis)
    sizes = basis.shell_sizes().astype(float)
    slices = basis.shell_slices
    t_eri = config.t_int_nwchem  # one process per core

    def quartets_of(task: NWChemTask):
        for l_at in task.l_range():
            yield from atom_quartet_shell_quartets(
                screen, shells_of_atom, task.i_at, task.j_at, task.k_at, l_at
            )

    def cost_of(task: NWChemTask) -> float:
        n_eri = 0.0
        for (m, n, p, q) in quartets_of(task):
            n_eri += sizes[m] * sizes[n] * sizes[p] * sizes[q]
        return n_eri * t_eri + config.task_overhead

    def comm_of(proc: int, task: NWChemTask) -> None:
        # fetch the D atom blocks this task's quartets touch (6 pairs per
        # atom quartet: IJ, KL, IK, JL, IL, JK); Algorithm 2 line 14.
        for l_at in task.l_range():
            i, jj, k = task.i_at, task.j_at, task.k_at
            for (a, b) in ((i, jj), (k, l_at), (i, k), (jj, l_at), (i, l_at), (jj, k)):
                (r0, r1), (c0, c1) = aranges[a], aranges[b]
                ga_d.get(proc, r0, r1, c0, c1, channel=CH_TASK_GET)

    # local accumulation buffer per process; flushed per task region
    jbuf = [np.zeros((nbf, nbf)) for _ in range(nproc)]
    kbuf = [np.zeros((nbf, nbf)) for _ in range(nproc)]

    def on_task(proc: int, task: NWChemTask) -> None:
        touched: set[tuple[int, int]] = set()
        for (m, n, p, q) in quartets_of(task):
            block = engine.quartet(m, n, p, q)
            for (a, b, c, d), blk in orbit_images((m, n, p, q), block):
                sa, sb, sc, sd = slices[a], slices[b], slices[c], slices[d]
                jbuf[proc][sa, sb] += np.einsum("abcd,cd->ab", blk, density[sc, sd])
                kbuf[proc][sa, sc] += np.einsum("abcd,bd->ac", blk, density[sb, sd])
                touched.add((a, b))
                touched.add((a, c))
        # accumulate the updated F blocks back (Algorithm 2 line 16);
        # aggregate per touched atom-pair block like NWChem's 6 updates
        atom_pairs = {
            (int(basis.atom_of_shell[a]), int(basis.atom_of_shell[b]))
            for (a, b) in touched
        }
        for (a_at, b_at) in atom_pairs:
            (r0, r1), (c0, c1) = aranges[a_at], aranges[b_at]
            g = 2.0 * jbuf[proc][r0:r1, c0:c1] - kbuf[proc][r0:r1, c0:c1]
            ga_g.acc(proc, r0, c0, g, channel=CH_FOCK_ACC)
            jbuf[proc][r0:r1, c0:c1] = 0.0
            kbuf[proc][r0:r1, c0:c1] = 0.0

    outcome = run_centralized(
        tasks, nproc, stats, cost_of, comm_of=comm_of, on_task=on_task
    )
    fock = hcore + ga_g.to_numpy()
    return NWChemBuildResult(
        fock=fock, stats=stats, outcome=outcome, screen=screen, ntasks=len(tasks)
    )
