"""The paper's algorithm: distributed Fock build, numeric mode (Algorithm 4).

Runs the full GTFock pipeline on the simulated runtime with *real* data
movement, so the resulting Fock matrix can be compared bit-for-bit
against the sequential reference:

1. static 2-D partition of shell-pair tasks over the process grid;
2. per-process prefetch of the D footprint into a local buffer
   (reads outside the prefetched footprint raise -- prefetch-sufficiency
   is *checked*, not assumed);
3. task execution through the work-stealing scheduler, accumulating into
   local J/K buffers (thieves receive the victim's D buffer on steal);
4. one final accumulate of each process's local contribution into the
   distributed result, then ``F = Hcore + 2J - K``.

Every phase is observable through :mod:`repro.obs`: the host build is a
nested wall-clock span tree (setup / prefetch / schedule / flush, with
one ``task(m,n)`` span per executed shell-pair task), while the
simulated ranks get virtual-clock spans -- ``prefetch`` and ``flush``
bracketed by the :class:`CommStats` clocks, plus the scheduler's own
per-task/steal events -- one Perfetto row per rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:
    from repro.fock.simulate import SimCapture

from repro.fock.cost import TaskCosts, quartet_cost_matrix
from repro.fock.partition import StaticPartition
from repro.fock.prefetch import (
    block_footprint,
    footprint_bounding_boxes,
    footprint_element_mask,
)
from repro.fock.screening_map import ScreeningMap
from repro.fock.stealing import StealingOutcome, run_work_stealing
from repro.fock.tasks import enumerate_task_quartets
from repro.integrals.engine import ERIEngine
from repro.obs import Tracer, get_tracer
from repro.obs.flight import CH_FOCK_ACC, CH_PREFETCH_GET, CH_STEAL_F, CH_TASK_GET
from repro.runtime.faults import FaultPlan, FaultState
from repro.runtime.ga import GlobalArray
from repro.runtime.machine import LONESTAR, MachineConfig
from repro.runtime.network import CommStats
from repro.scf.fock import orbit_images


class PrefetchMiss(RuntimeError):
    """A task read a D element its process never prefetched (a real bug)."""


@dataclass
class GTFockBuildResult:
    fock: np.ndarray
    stats: CommStats
    outcome: StealingOutcome
    partition: StaticPartition
    screen: ScreeningMap
    costs: TaskCosts
    #: activated fault state when the build ran under fault injection
    faults: FaultState | None = None

    @property
    def quartets_computed(self) -> float:
        return float(self.outcome.executed_tasks.sum())


class _ProcessBuffers:
    """Per-process local state: prefetched D, fetched mask, J/K buffers."""

    def __init__(self, nbf: int):
        self.d_local = np.zeros((nbf, nbf))
        self.have = np.zeros((nbf, nbf), dtype=bool)
        self.j = np.zeros((nbf, nbf))
        self.k = np.zeros((nbf, nbf))
        #: on-demand fetch of an unprefetched D block; only installed
        #: under fault injection, where adopting a dead rank's orphaned
        #: tasks legitimately needs D outside this rank's footprint
        self.fetch: Callable[[slice, slice], np.ndarray] | None = None

    def read_d(self, rows: slice, cols: slice) -> np.ndarray:
        """Read a D block, exploiting D's symmetry like the real GTFock.

        The prefetch regions store each needed block in at least one
        orientation; the transpose is served from the mirrored block.
        A miss in *both* orientations is a genuine coverage bug --
        unless a fault-recovery fetcher is installed, in which case the
        block is fetched on demand (and charged) instead.
        """
        if self.have[rows, cols].all():
            return self.d_local[rows, cols]
        if self.have[cols, rows].all():
            return self.d_local[cols, rows].T
        if self.fetch is not None:
            self.d_local[rows, cols] = self.fetch(rows, cols)
            self.have[rows, cols] = True
            return self.d_local[rows, cols]
        raise PrefetchMiss(
            f"D[{rows}, {cols}] was not prefetched by this process"
        )

    def merge_from(self, other: "_ProcessBuffers") -> None:
        """Copy a steal victim's D coverage into this process."""
        new = other.have & ~self.have
        self.d_local[new] = other.d_local[new]
        self.have |= other.have


def gtfock_build(
    engine: ERIEngine,
    hcore: np.ndarray,
    density: np.ndarray,
    nproc: int,
    tau: float = 1e-11,
    config: MachineConfig = LONESTAR,
    enable_stealing: bool = True,
    screen: ScreeningMap | None = None,
    tracer: Tracer | None = None,
    faults: FaultPlan | FaultState | None = None,
    capture: "SimCapture | None" = None,
) -> GTFockBuildResult:
    """Numeric GTFock Fock-matrix construction on ``nproc`` simulated processes.

    The ``engine.basis`` ordering is used as-is; apply
    :func:`repro.fock.reorder.reorder_basis` beforehand (and pass matching
    ``hcore``/``density``) to include the Sec III-D reordering.

    ``faults`` runs the build under fault injection (stragglers, lossy
    one-sided ops with retry, rank deaths).  The build is engineered to
    produce the *same* Fock matrix regardless: retried accumulates are
    tag-deduplicated, a dead rank's partial flush epoch is aborted, and
    its orphaned tasks are re-executed by survivors (reading D on demand
    where their prefetch footprint falls short).  Only the virtual-time
    accounting, retry channel, and recovery records differ.

    ``capture`` is an optional
    :class:`~repro.fock.simulate.SimCapture` that the build fills with
    the raw per-rank accounting for the critical-path analyzer
    (:func:`repro.obs.critpath.analyze`).
    """
    if tracer is None:
        tracer = get_tracer()
    basis = engine.basis
    nbf = basis.nbf
    if hcore.shape != (nbf, nbf) or density.shape != (nbf, nbf):
        raise ValueError("hcore/density shape does not match the basis")
    if isinstance(faults, FaultPlan):
        fstate: FaultState | None = faults.activate(nproc)
    else:
        fstate = faults
    if fstate is not None and fstate.nproc != nproc:
        raise ValueError(f"fault state is for {fstate.nproc} ranks, build has {nproc}")
    with tracer.span("gtfock_build", cat="fock", nproc=nproc, nbf=nbf) as top:
        with tracer.span("setup", cat="fock"):
            if screen is None:
                screen = ScreeningMap(basis, engine.schwarz(), tau)
            part = StaticPartition.build(basis.nshells, nproc)
            rb, cb = part.matrix_bounds(basis)
            stats = CommStats(nproc, config, faults=fstate)
            ga_d = GlobalArray(stats, nbf, nbf, rb, cb)
            ga_d.load(density)
            ga_g = GlobalArray(stats, nbf, nbf, rb, cb)
            costs = quartet_cost_matrix(screen)
            offsets = basis.offsets
            bufs = [_ProcessBuffers(nbf) for _ in range(nproc)]
            slices = basis.shell_slices
            if fstate is not None:
                for p in range(nproc):
                    def fetch(rows, cols, p=p):
                        return ga_d.get(
                            p, rows.start, rows.stop, cols.start, cols.stop,
                            channel=CH_TASK_GET,
                        )
                    bufs[p].fetch = fetch

        # -- prefetch phase (Algorithm 4, line 3) ----------------------------
        own_masks: list[np.ndarray] = []
        prefetch_time = np.zeros(nproc)
        with tracer.span("prefetch", cat="fock"):
            for p in range(nproc):
                clock0 = float(stats.clock[p])
                fp = block_footprint(screen, part.task_block(p))
                own_masks.append(footprint_element_mask(fp, basis))
                boxes = footprint_bounding_boxes(fp)
                for r0, r1, c0, c1 in boxes:
                    fr0, fr1 = int(offsets[r0]), int(offsets[r1])
                    fc0, fc1 = int(offsets[c0]), int(offsets[c1])
                    bufs[p].d_local[fr0:fr1, fc0:fc1] = ga_d.get(
                        p, fr0, fr1, fc0, fc1, channel=CH_PREFETCH_GET
                    )
                    bufs[p].have[fr0:fr1, fc0:fc1] = True
                prefetch_time[p] = float(stats.clock[p]) - clock0
                tracer.virtual_span(
                    "prefetch", p, clock0, float(stats.clock[p]), cat="comm",
                    boxes=len(boxes), elements=int(fp.elements),
                )

        # -- task execution through the work-stealing scheduler --------------
        t_task = config.t_int_gtfock / config.cores_per_node

        def cost_of(task: tuple[int, int]) -> float:
            m, n = task
            return float(costs.eris[m, n]) * t_task + config.task_overhead

        def on_task(proc: int, task: tuple[int, int]) -> None:
            m, n = task
            with tracer.span(f"task({m},{n})", cat="task", proc=proc) as sp:
                buf = bufs[proc]
                nq = 0
                for (mm, pp, nn, qq) in enumerate_task_quartets(screen, m, n):
                    block = engine.quartet(mm, pp, nn, qq)
                    nq += 1
                    for (a, b, c, d), blk in orbit_images(
                        (mm, pp, nn, qq), block
                    ):
                        sa, sb, sc, sd = (
                            slices[a], slices[b], slices[c], slices[d]
                        )
                        dcd = buf.read_d(sc, sd)
                        dbd = buf.read_d(sb, sd)
                        buf.j[sa, sb] += np.einsum("abcd,cd->ab", blk, dcd)
                        buf.k[sa, sc] += np.einsum("abcd,bd->ac", blk, dbd)
                sp["quartets"] = nq

        def on_steal(thief: int, victim: int) -> None:
            bufs[thief].merge_from(bufs[victim])

        seen_victims: set[tuple[int, int]] = set()

        def steal_cost(thief: int, victim: int) -> float:
            # copy the victim's D buffer (Sec III-F), once per new victim
            if (thief, victim) in seen_victims:
                return 0.0
            seen_victims.add((thief, victim))
            nbytes = int(bufs[victim].have.sum()) * config.element_size
            return stats.charge_steal(thief, nbytes, ncalls=1)

        event_observer = None
        if capture is not None:
            event_observer = lambda action, time, key: capture.events.append(
                (action, time, key)
            )

        with tracer.span("schedule", cat="fock"):
            queues = [part.task_block(p).tasks() for p in range(nproc)]
            outcome = run_work_stealing(
                queues,
                cost_of,
                (part.prow, part.pcol),
                stats=stats,
                steal_cost=steal_cost,
                on_task=on_task,
                on_steal=on_steal,
                enable_stealing=enable_stealing,
                tracer=tracer,
                faults=fstate,
                rng=fstate.rng if fstate is not None else None,
                event_observer=event_observer,
            )

        # -- final flush (Algorithm 4, line 9) --------------------------------
        flush_time = np.zeros(nproc)
        with tracer.span("flush", cat="fock"):
            dead = set(outcome.dead_ranks)

            def acc_bbox(p: int, g: np.ndarray, channel: str) -> None:
                nz = np.nonzero(g)
                if nz[0].size == 0:
                    return
                r0, r1 = int(nz[0].min()), int(nz[0].max()) + 1
                c0, c1 = int(nz[1].min()), int(nz[1].max()) + 1
                epoch = ("flush", p) if fstate is not None else None
                tag = ("flush", p, channel) if fstate is not None else None
                ga_g.acc(
                    p, r0, c0, g[r0:r1, c0:c1], channel=channel,
                    tag=tag, epoch=epoch,
                )

            for p in range(nproc):
                if p in dead:
                    # the rank's J/K buffers died with it; its work was
                    # re-executed (and will be flushed) by survivors
                    continue
                clock0 = float(stats.clock[p])
                g = 2.0 * bufs[p].j - bufs[p].k
                if not g.any():
                    continue
                # attribute the flush: contributions inside this process's
                # own static-partition footprint are the ordinary F
                # accumulate; anything outside can only come from stolen
                # tasks and goes out on its own channel (non-thieves emit
                # exactly the single acc they always did)
                own = own_masks[p]
                if fstate is not None:
                    ga_g.begin_epoch(("flush", p))
                acc_bbox(p, np.where(own, g, 0.0), CH_FOCK_ACC)
                acc_bbox(p, np.where(own, 0.0, g), CH_STEAL_F)
                if fstate is not None:
                    ga_g.commit_epoch(("flush", p))
                flush_time[p] = float(stats.clock[p]) - clock0
                tracer.virtual_span(
                    "flush", p, clock0, float(stats.clock[p]), cat="comm"
                )
            fock = hcore + ga_g.to_numpy()
        top["steals"] = len(outcome.steals)
        top["quartets"] = float(outcome.executed_tasks.sum())
        if fstate is not None:
            top["dead_ranks"] = len(outcome.dead_ranks)
            top["reexecuted"] = outcome.reexecuted_tasks

    if capture is not None:
        capture.algorithm = "gtfock"
        capture.molecule = basis.molecule.name or basis.molecule.formula
        capture.cores = nproc * config.cores_per_node
        capture.nproc = nproc
        capture.config = config
        capture.stats = stats
        capture.outcome = outcome
        capture.finish = stats.clock.copy()
        capture.prefetch_time = prefetch_time
        capture.flush_time = flush_time
        capture.tracer = tracer
        # no resimulate closure: re-running the numeric build recomputes
        # real ERIs -- the analyzer's what-ifs stay projection-only here

    return GTFockBuildResult(
        fock=fock,
        stats=stats,
        outcome=outcome,
        partition=part,
        screen=screen,
        costs=costs,
        faults=fstate,
    )
