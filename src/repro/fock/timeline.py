"""Execution-timeline recording and rendering for scheduler runs.

Wraps :func:`repro.fock.stealing.run_work_stealing` so every batch
execution and steal becomes a timestamped span, then renders a text
Gantt chart -- the tool one actually wants when debugging load balance
("who idled, who got robbed, when").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.fock.stealing import StealingOutcome, run_work_stealing


@dataclass(frozen=True)
class Span:
    """One contiguous interval of activity on a process."""

    proc: int
    start: float
    end: float
    kind: str  # "work" | "steal"
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    spans: list[Span] = field(default_factory=list)

    def for_proc(self, proc: int) -> list[Span]:
        return sorted(
            (s for s in self.spans if s.proc == proc), key=lambda s: s.start
        )

    @property
    def makespan(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def busy_fraction(self, proc: int) -> float:
        """Fraction of the makespan this process spent working."""
        total = self.makespan
        if total <= 0:
            return 1.0
        busy = sum(s.duration for s in self.for_proc(proc) if s.kind == "work")
        return busy / total

    def render(self, width: int = 72) -> str:
        """Text Gantt chart: '#' working, '$' stealing, '.' idle."""
        total = self.makespan
        nproc = max((s.proc for s in self.spans), default=-1) + 1
        if total <= 0 or nproc == 0:
            return "(empty timeline)"
        rows = []
        for p in range(nproc):
            row = ["."] * width
            for s in self.for_proc(p):
                c0 = int(s.start / total * (width - 1))
                c1 = max(c0, int(s.end / total * (width - 1)))
                ch = "#" if s.kind == "work" else "$"
                for c in range(c0, c1 + 1):
                    if row[c] != "#":  # work wins over steal marks
                        row[c] = ch
            rows.append(f"p{p:<3d} |{''.join(row)}|")
        rows.append(f"     0{' ' * (width - len(str(round(total, 2))) - 1)}"
                    f"{round(total, 2)}s")
        return "\n".join(rows)


def traced_work_stealing(
    queues: list[list[Any]],
    cost_of: Callable[[Any], float],
    grid: tuple[int, int],
    **kwargs,
) -> tuple[StealingOutcome, Timeline]:
    """Run the work-stealing simulation while recording a Timeline.

    Work spans are reconstructed by replaying each process's committed
    tasks back-to-back from t=0 (the scheduler keeps workers busy until
    their final idle tail, so mid-run gaps are negligible); steal events
    carry exact timestamps from the outcome.  Intended for visualization
    and busy-fraction summaries, not as a cycle-accurate trace.
    """
    inner_on_task = kwargs.pop("on_task", None)
    executed: list[tuple[int, Any]] = []

    def on_task(proc: int, task: Any) -> None:
        executed.append((proc, task))
        if inner_on_task is not None:
            inner_on_task(proc, task)

    outcome = run_work_stealing(
        queues, cost_of, grid, on_task=on_task, **kwargs
    )
    timeline = Timeline()
    # rebuild per-proc work spans by replaying costs in commit order;
    # batches committed together are contiguous in the executed list
    cursor = np.zeros(len(queues))
    for rec in outcome.steals:
        timeline.spans.append(
            Span(rec.thief, rec.time, rec.time, "steal", f"from p{rec.victim}")
        )
    for proc, task in executed:
        c = cost_of(task)
        start = cursor[proc]
        timeline.spans.append(Span(proc, start, start + c, "work", str(task)))
        cursor[proc] = start + c
    return outcome, timeline
