"""Execution-timeline recording and rendering for scheduler runs.

Wraps :func:`repro.fock.stealing.run_work_stealing` with a private
:class:`~repro.obs.Tracer` so every executed task and steal becomes a
timestamped span with *exact* scheduler times, then renders a text
Gantt chart -- the tool one actually wants when debugging load balance
("who idled, who got robbed, when").  For Perfetto-grade traces of the
same run, pass a tracer to ``run_work_stealing`` directly (see
``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.fock.stealing import StealingOutcome, run_work_stealing
from repro.obs import Tracer


@dataclass(frozen=True)
class Span:
    """One contiguous interval of activity on a process."""

    proc: int
    start: float
    end: float
    kind: str  # "work" | "steal" | "comm" | "blocked"
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    spans: list[Span] = field(default_factory=list)

    def for_proc(self, proc: int) -> list[Span]:
        return sorted(
            (s for s in self.spans if s.proc == proc), key=lambda s: s.start
        )

    @property
    def makespan(self) -> float:
        return max((s.end for s in self.spans), default=0.0)

    def busy_fraction(self, proc: int) -> float:
        """Fraction of the makespan this process spent working."""
        total = self.makespan
        if total <= 0:
            return 1.0
        busy = sum(s.duration for s in self.for_proc(proc) if s.kind == "work")
        return busy / total

    #: render characters per span kind ('.' marks idle gaps)
    _CHARS = {"work": "#", "steal": "$", "comm": "%", "blocked": "~"}

    def render(self, width: int = 72) -> str:
        """Text Gantt chart: '#' working, '$' stealing, '%' communicating,
        '~' blocked waiting, '.' idle."""
        total = self.makespan
        nproc = max((s.proc for s in self.spans), default=-1) + 1
        if total <= 0 or nproc == 0:
            return "(empty timeline)"
        rows = []
        for p in range(nproc):
            row = ["."] * width
            for s in self.for_proc(p):
                c0 = int(s.start / total * (width - 1))
                c1 = max(c0, int(s.end / total * (width - 1)))
                ch = self._CHARS.get(s.kind, "?")
                for c in range(c0, c1 + 1):
                    if row[c] != "#":  # work wins over steal marks
                        row[c] = ch
            rows.append(f"p{p:<3d} |{''.join(row)}|")
        rows.append(f"     0{' ' * (width - len(str(round(total, 2))) - 1)}"
                    f"{round(total, 2)}s")
        return "\n".join(rows)


def timeline_from_tracer(tracer: Tracer) -> Timeline:
    """Convert a tracer's virtual scheduler events into a :class:`Timeline`.

    Per-task virtual spans (``cat="task"``) become work spans with the
    scheduler's exact start/end times; ``steal`` instants become
    zero-duration steal marks on the thief's row; ``steal_copy`` comm
    spans (the thief paying for the victim's D-buffer copy) become
    duration-bearing steal spans; ``prefetch`` / ``flush`` comm spans
    become comm spans; ``blocked`` spans (a done rank parked until a
    death wakes it) keep their own kind and render as ``~``.
    """
    timeline = Timeline()
    for ev in tracer.spans(cat="task"):
        timeline.spans.append(
            Span(ev.tid, ev.ts, ev.end, "work", str(ev.args.get("task", "")))
        )
    for ev in tracer.instants(name="steal"):
        timeline.spans.append(
            Span(ev.tid, ev.ts, ev.ts, "steal", f"from p{ev.args['victim']}")
        )
    for ev in tracer.spans(cat="comm"):
        if ev.name == "steal_copy":
            kind, detail = "steal", f"copy from p{ev.args.get('victim', '?')}"
        else:
            kind, detail = "comm", ev.name
        timeline.spans.append(Span(ev.tid, ev.ts, ev.end, kind, detail))
    for ev in tracer.spans(cat="sched"):
        if ev.name == "blocked":
            timeline.spans.append(
                Span(ev.tid, ev.ts, ev.end, "blocked", "await orphans")
            )
    return timeline


def traced_work_stealing(
    queues: list[list[Any]],
    cost_of: Callable[[Any], float],
    grid: tuple[int, int],
    **kwargs,
) -> tuple[StealingOutcome, Timeline]:
    """Run the work-stealing simulation while recording a Timeline.

    The scheduler itself records every executed task as a virtual span
    (including idle gaps between a steal and the stolen batch's start),
    so the Timeline is cycle-accurate -- unlike the pre-``repro.obs``
    version of this helper, which replayed committed tasks back-to-back
    from t=0 and lost the gaps.
    """
    tracer = kwargs.pop("tracer", None) or Tracer("work-stealing")
    outcome = run_work_stealing(queues, cost_of, grid, tracer=tracer, **kwargs)
    return outcome, timeline_from_tracer(tracer)
