"""repro: a reproduction of "A New Scalable Parallel Algorithm for Fock
Matrix Construction" (Liu, Patel, Chow -- IPDPS 2014; the GTFock paper).

Layers (bottom to top):

* :mod:`repro.chem` -- molecules, geometry builders, Gaussian basis sets;
* :mod:`repro.integrals` -- from-scratch integral engines (Boys,
  McMurchie-Davidson, Obara-Saika), Schwarz screening;
* :mod:`repro.scf` -- reference Fock build, RHF, DIIS, purification;
* :mod:`repro.runtime` -- the simulated distributed machine
  (Global-Arrays-style one-sided ops, alpha-beta network accounting);
* :mod:`repro.fock` -- the paper's algorithm and the NWChem baseline,
  numeric and timing-level;
* :mod:`repro.dist` -- SUMMA and distributed purification;
* :mod:`repro.model` -- the Sec III-G performance model;
* :mod:`repro.parallel` -- real multiprocessing execution;
* :mod:`repro.obs` -- tracing (Perfetto export) and metrics across all
  of the above;
* :mod:`repro.bench` -- experiment drivers for every table and figure.

Quickstart::

    from repro.chem import water
    from repro.scf import RHF
    print(RHF(water()).run().energy)
"""

from repro.chem import BasisSet, Molecule, alkane, graphene_flake, water
from repro.fock import gtfock_build, nwchem_build, simulate_gtfock, simulate_nwchem
from repro.scf import RHF

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BasisSet",
    "Molecule",
    "alkane",
    "graphene_flake",
    "water",
    "gtfock_build",
    "nwchem_build",
    "simulate_gtfock",
    "simulate_nwchem",
    "RHF",
]
